#include "gallager/optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "gallager/marginals.h"
#include "graph/dag.h"
#include "graph/dijkstra.h"

namespace mdr::gallager {

using graph::LinkId;
using graph::NodeId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Finite, convex surrogate for D_T used to steer the iteration even when a
// transient iterate overloads a link: the true delay below 95% utilization,
// extended linearly above it. The reported result always uses the true D_T.
double penalized_total_delay(const flow::FlowNetwork& net,
                             std::span<const double> link_flows) {
  double total = 0.0;
  for (std::size_t id = 0; id < link_flows.size(); ++id) {
    const auto& m = net.model(static_cast<LinkId>(id));
    const double knee = 0.95 * m.capacity_bps;
    const double f = link_flows[id];
    if (f <= knee) {
      total += m.total_delay_rate(f);
    } else {
      const double pkt = m.mean_packet_bits;
      total += m.total_delay_rate(knee) +
               (f - knee) / pkt * m.marginal_delay(knee);
    }
  }
  return total;
}

// True if node `from` can reach node `to` following successor edges.
bool reaches(const graph::SuccessorSets& succ, NodeId from, NodeId to) {
  if (from == to) return true;
  std::vector<bool> seen(succ.size(), false);
  std::vector<NodeId> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId k : succ[u]) {
      if (k == to) return true;
      if (!seen[k]) {
        seen[k] = true;
        stack.push_back(k);
      }
    }
  }
  return false;
}

// Rebuilds succ[i] from phi after an update to node i.
void refresh_successors(const flow::RoutingParameters& phi,
                        const graph::Topology& topo, NodeId i, NodeId dest,
                        graph::SuccessorSets& succ) {
  succ[i].clear();
  const auto phis = phi.at(i, dest);
  const auto links = topo.out_links(i);
  for (std::size_t x = 0; x < links.size(); ++x) {
    if (phis[x] > 0.0) succ[i].push_back(topo.link(links[x]).to);
  }
}

}  // namespace

flow::RoutingParameters shortest_path_phi(const flow::FlowNetwork& net) {
  const auto& topo = net.topology();
  const auto n = static_cast<NodeId>(topo.num_nodes());
  flow::RoutingParameters phi(topo);
  const auto costs = net.zero_load_costs();

  // One reverse Dijkstra per destination: the reverse-tree parent of i is
  // i's next hop toward dest in the original graph.
  std::vector<graph::CostedEdge> reversed;
  reversed.reserve(topo.num_links());
  for (LinkId id = 0; id < static_cast<LinkId>(topo.num_links()); ++id) {
    const auto& l = topo.link(id);
    reversed.push_back(graph::CostedEdge{l.to, l.from, costs[id]});
  }
  for (NodeId dest = 0; dest < n; ++dest) {
    const auto spt = graph::dijkstra(topo.num_nodes(), reversed, dest);
    for (NodeId i = 0; i < n; ++i) {
      if (i == dest || !spt.reachable(i)) continue;
      const NodeId next = spt.parent[i];
      const LinkId link = topo.find_link(i, next);
      assert(link != graph::kInvalidLink);
      const auto links = topo.out_links(i);
      for (std::size_t x = 0; x < links.size(); ++x) {
        if (links[x] == link) {
          phi.set_single_path(i, dest, x);
          break;
        }
      }
    }
  }
  return phi;
}

Result minimize(const flow::FlowNetwork& net,
                const flow::TrafficMatrix& traffic, const Options& options) {
  const auto& topo = net.topology();
  const auto n = static_cast<NodeId>(topo.num_nodes());

  Result result{shortest_path_phi(net),
                /*total_delay_rate=*/0,
                /*average_delay_s=*/0,
                /*iterations=*/0,
                /*converged=*/false,
                /*feasible=*/true,
                /*delay_trace=*/{}};

  // Destinations that actually receive traffic; others keep their SPT phi.
  std::vector<NodeId> active_dests;
  for (NodeId j = 0; j < n; ++j) {
    double incoming = 0;
    for (NodeId i = 0; i < n; ++i) incoming += traffic.rate(i, j);
    if (incoming > 0) active_dests.push_back(j);
  }

  double eta = options.eta;
  // Gallager's update is dphi = eta * a / t with a in delay units and t in
  // flow units, so the useful range of the global constant depends on the
  // network's absolute scales — one of the paper's criticisms of OPT. We
  // keep the same functional form but normalize by the mean zero-load link
  // cost and measure t in packets/s, making eta a dimensionless shift
  // fraction; the adaptive halving then tunes it per instance.
  double cost_scale = 0;
  {
    const auto zero = net.zero_load_costs();
    for (const double c : zero) cost_scale += c;
    cost_scale /= static_cast<double>(zero.size());
  }
  auto assignment = flow::compute_flows(net, traffic, result.phi);
  double objective = penalized_total_delay(net, assignment.link_flows);
  result.delay_trace.push_back(objective);

  int flat_streak = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const auto marginals = net.marginal_costs(assignment.link_flows);
    // Link curvatures for the second-derivative (Bertsekas-Gallager) step.
    std::vector<double> curvatures;
    if (options.second_derivative) {
      curvatures.reserve(topo.num_links());
      for (std::size_t id = 0; id < topo.num_links(); ++id) {
        curvatures.push_back(
            net.model(static_cast<graph::LinkId>(id))
                .delay_curvature_clamped(assignment.link_flows[id]));
      }
    }
    const flow::RoutingParameters before = result.phi;

    for (NodeId j : active_dests) {
      const auto md = marginal_distances(net, result.phi, marginals, j);
      auto succ = result.phi.successor_sets(j);

      for (NodeId i = 0; i < n; ++i) {
        if (i == j) continue;
        const auto links = topo.out_links(i);
        auto phis = result.phi.at_mutable(i, j);

        // Marginal distance through each neighbor; +inf where unusable.
        std::vector<double> through(links.size(), kInf);
        for (std::size_t x = 0; x < links.size(); ++x) {
          const NodeId k = topo.link(links[x]).to;
          if (std::isfinite(md[k])) through[x] = marginals[links[x]] + md[k];
        }

        // Best neighbor whose adoption keeps SG_j acyclic (the blocking
        // technique): a zero-phi neighbor that can reach i is blocked.
        std::size_t k_min = links.size();
        for (std::size_t x = 0; x < links.size(); ++x) {
          if (!std::isfinite(through[x])) continue;
          if (k_min != links.size() && through[x] >= through[k_min]) continue;
          const NodeId k = topo.link(links[x]).to;
          if (phis[x] <= 0.0 && reaches(succ, k, i)) continue;  // blocked
          k_min = x;
        }
        if (k_min == links.size()) continue;  // nowhere usable to shift

        const double t_ij = assignment.node_traffic(i, j);
        if (t_ij <= 0.0) {
          // Gallager: idle routers simply adopt the best neighbor.
          for (double& v : phis) v = 0.0;
          phis[k_min] = 1.0;
          refresh_successors(result.phi, topo, i, j, succ);
          continue;
        }

        const double t_pkt = std::max(t_ij / net.mean_packet_bits(), 1.0);
        double moved = 0.0;
        for (std::size_t x = 0; x < links.size(); ++x) {
          if (x == k_min || phis[x] <= 0.0) continue;
          const double a = std::isfinite(through[x])
                               ? through[x] - through[k_min]
                               : kInf;
          // First-derivative step normalized by the mean zero-load cost, or
          // the curvature-scaled (diagonal Newton) step.
          const double scale =
              options.second_derivative
                  ? curvatures[static_cast<std::size_t>(links[x])] +
                        curvatures[static_cast<std::size_t>(links[k_min])]
                  : cost_scale;
          const double delta = std::min(phis[x], eta * a / (scale * t_pkt));
          phis[x] -= delta;
          if (phis[x] < 1e-12) {
            moved += phis[x] + delta;
            phis[x] = 0.0;
          } else {
            moved += delta;
          }
        }
        phis[k_min] += moved;
        refresh_successors(result.phi, topo, i, j, succ);
      }
    }

    assignment = flow::compute_flows(net, traffic, result.phi);
    const double new_objective =
        penalized_total_delay(net, assignment.link_flows);

    if (options.adaptive_step && !(new_objective < objective * (1 - 1e-12))) {
      // No strict improvement: either an overshoot (possibly one that lands
      // on a symmetric iterate with the same D_T, an oscillation a fixed
      // too-large eta never escapes) or a plateau. Revert and retry with a
      // smaller global step; the eta floor below ends the run.
      result.phi = before;
      assignment = flow::compute_flows(net, traffic, result.phi);
      eta *= 0.5;
      result.delay_trace.push_back(objective);
      if (eta < 1e-9) {
        result.converged = true;
        result.iterations = iter + 1;
        break;
      }
      continue;
    }

    const double improvement =
        (objective - new_objective) / std::max(objective, 1e-300);
    objective = new_objective;
    result.delay_trace.push_back(objective);
    result.iterations = iter + 1;

    flat_streak = improvement < options.tolerance ? flat_streak + 1 : 0;
    if (flat_streak >= options.patience) {
      result.converged = true;
      break;
    }
  }

  result.total_delay_rate =
      flow::total_delay_rate(net, assignment.link_flows);
  result.feasible = std::isfinite(result.total_delay_rate);
  result.average_delay_s = flow::average_delay(net, traffic, result.phi);
  return result;
}

}  // namespace mdr::gallager
