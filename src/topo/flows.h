// The paper's evaluation flow sets (Section 5).
//
// CAIRN: 11 source-destination pairs; NET1: 10 pairs, exactly as listed in
// the paper. The paper's per-flow rates survive only as "bandwidths in the
// range ? Mbs"; we expose a default band of 1.0-3.0 Mb/s assigned
// deterministically, and every experiment can scale the whole set (see
// DESIGN.md §5).
#pragma once

#include <string>
#include <vector>

#include "flow/network.h"
#include "graph/topology.h"
#include "util/rng.h"

namespace mdr::topo {

struct FlowSpec {
  std::string src;
  std::string dst;
  double rate_bps = 0;
};

/// The 11 CAIRN flows of Section 5, in the paper's order (flow ids 0..10 on
/// the figures' x-axes).
std::vector<FlowSpec> cairn_flows(double scale = 1.0);

/// The 10 NET1 flows of Section 5 (flow ids 0..9).
std::vector<FlowSpec> net1_flows(double scale = 1.0);

/// `count` random flows over an arbitrary topology (for the generated
/// scale topologies, which have no paper flow set): distinct endpoints,
/// rates uniform in [0.5, 1.5] x mean_rate_bps. Deterministic in `rng`.
std::vector<FlowSpec> random_flows(const graph::Topology& topo,
                                   std::size_t count, double mean_rate_bps,
                                   Rng& rng);

/// Resolves flow specs against a topology into a traffic matrix.
flow::TrafficMatrix to_traffic_matrix(const graph::Topology& topo,
                                      const std::vector<FlowSpec>& flows);

}  // namespace mdr::topo
