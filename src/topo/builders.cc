#include "topo/builders.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <vector>

namespace mdr::topo {

using graph::LinkAttr;
using graph::NodeId;
using graph::Topology;

namespace {

// Declarative duplex-link spec used by the fixed builders.
struct Duplex {
  const char* a;
  const char* b;
  double capacity_bps;
  double prop_delay_s;
};

Topology build_named(std::initializer_list<const char*> names,
                     std::initializer_list<Duplex> links) {
  Topology topo;
  for (const char* n : names) topo.add_node(n);
  for (const Duplex& l : links) {
    const NodeId a = topo.find_node(l.a);
    const NodeId b = topo.find_node(l.b);
    assert(a != graph::kInvalidNode && b != graph::kInvalidNode);
    topo.add_duplex(a, b, LinkAttr{l.capacity_bps, l.prop_delay_s});
  }
  return topo;
}

}  // namespace

Topology make_cairn() {
  // Reconstruction of the 1999 CAIRN research network (DESIGN.md §5): the
  // 26 router names surviving in the paper's Fig. 8, wired as a sparse
  // coast-to-coast research backbone (west cluster around sri/isi, east
  // cluster around mci-r/isi-e, two transcontinental trunks so east-west
  // traffic has multiple unequal-cost paths). The paper keeps only CAIRN's
  // connectivity and assumes its own capacities (<= 10 Mb/s) and
  // propagation delays; we do the same, with short "metro" and longer
  // "regional/haul" delays.
  constexpr double kCap = 10e6;
  constexpr double kMetro = 50e-6;
  constexpr double kRegional = 150e-6;
  constexpr double kHaul = 400e-6;
  return build_named(
      {
          // west
          "ucsc", "epsilon", "cisco-w", "parc", "ucb", "sri", "lbl", "nasa",
          "isi", "ucla", "sdsc", "saic",
          // middle
          "anl", "netstar",
          // east
          "mit", "bbn", "bell", "cmu", "darpa", "mci-r", "isi-e", "tis",
          "udel", "nrl-v6", "tioc",
          // transatlantic
          "ucl",
      },
      {
          // -- west coast cluster
          Duplex{"ucsc", "ucb", kCap, kMetro},
          Duplex{"ucsc", "sri", kCap, kMetro},
          Duplex{"epsilon", "ucsc", kCap, kMetro},
          Duplex{"epsilon", "sri", kCap, kMetro},
          Duplex{"ucb", "lbl", kCap, kMetro},
          Duplex{"ucb", "sri", kCap, kMetro},
          Duplex{"lbl", "parc", kCap, kMetro},
          Duplex{"parc", "sri", kCap, kMetro},
          Duplex{"parc", "cisco-w", kCap, kMetro},
          Duplex{"cisco-w", "sri", kCap, kMetro},
          Duplex{"nasa", "sri", kCap, kMetro},
          Duplex{"nasa", "isi", kCap, kRegional},
          Duplex{"sri", "isi", kCap, kRegional},
          Duplex{"isi", "ucla", kCap, kMetro},
          Duplex{"isi", "sdsc", kCap, kRegional},
          Duplex{"ucla", "sdsc", kCap, kMetro},
          Duplex{"ucla", "tioc", kCap, kMetro},
          Duplex{"isi", "tioc", kCap, kMetro},
          Duplex{"saic", "sdsc", kCap, kMetro},
          Duplex{"saic", "isi", kCap, kRegional},
          // -- transcontinental trunks
          Duplex{"sri", "anl", kCap, kHaul},
          Duplex{"isi", "mci-r", kCap, kHaul},
          Duplex{"netstar", "anl", kCap, kRegional},
          Duplex{"netstar", "sri", kCap, kHaul},
          Duplex{"anl", "mci-r", kCap, kRegional},
          Duplex{"anl", "cmu", kCap, kRegional},
          // -- east coast cluster
          Duplex{"cmu", "mci-r", kCap, kRegional},
          Duplex{"mit", "bbn", kCap, kMetro},
          Duplex{"mit", "cmu", kCap, kRegional},
          Duplex{"bbn", "mci-r", kCap, kRegional},
          Duplex{"bbn", "bell", kCap, kMetro},
          Duplex{"bell", "mci-r", kCap, kRegional},
          Duplex{"mci-r", "isi-e", kCap, kMetro},
          Duplex{"mci-r", "darpa", kCap, kMetro},
          Duplex{"mci-r", "tis", kCap, kMetro},
          Duplex{"isi-e", "darpa", kCap, kMetro},
          Duplex{"isi-e", "nrl-v6", kCap, kMetro},
          Duplex{"isi-e", "tis", kCap, kMetro},
          Duplex{"darpa", "nrl-v6", kCap, kMetro},
          Duplex{"tis", "udel", kCap, kMetro},
          Duplex{"udel", "mci-r", kCap, kRegional},
          // -- transatlantic
          Duplex{"ucl", "mci-r", kCap, kHaul},
          Duplex{"ucl", "bbn", kCap, kHaul},
      });
}

Topology make_net1() {
  // Reconstruction of the paper's contrived NET1 (DESIGN.md §5): 10 routers
  // 0..9 in two chorded clusters joined by two bridges (0-9 and 4-5), giving
  // degrees 3-4 (paper: "between 3 and 5") and diameter 4 (paper: "four"),
  // with plentiful unequal-cost multipath between the clusters.
  constexpr double kCap = 10e6;
  constexpr double kProp = 100e-6;
  return build_named(
      {"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"},
      {
          // cluster A spine + chords
          Duplex{"0", "1", kCap, kProp},
          Duplex{"1", "2", kCap, kProp},
          Duplex{"2", "3", kCap, kProp},
          Duplex{"3", "4", kCap, kProp},
          Duplex{"0", "2", kCap, kProp},
          Duplex{"1", "3", kCap, kProp},
          Duplex{"2", "4", kCap, kProp},
          // cluster B spine + chords
          Duplex{"5", "6", kCap, kProp},
          Duplex{"6", "7", kCap, kProp},
          Duplex{"7", "8", kCap, kProp},
          Duplex{"8", "9", kCap, kProp},
          Duplex{"5", "7", kCap, kProp},
          Duplex{"6", "8", kCap, kProp},
          Duplex{"7", "9", kCap, kProp},
          // bridges
          Duplex{"4", "5", kCap, kProp},
          Duplex{"0", "9", kCap, kProp},
      });
}

Topology make_ring(std::size_t n, BuilderDefaults d) {
  assert(n >= 3);
  Topology topo;
  topo.add_nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_duplex(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                    LinkAttr{d.capacity_bps, d.prop_delay_s});
  }
  return topo;
}

Topology make_grid(std::size_t rows, std::size_t cols, BuilderDefaults d) {
  assert(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Topology topo;
  topo.add_nodes(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        topo.add_duplex(id(r, c), id(r, c + 1),
                        LinkAttr{d.capacity_bps, d.prop_delay_s});
      }
      if (r + 1 < rows) {
        topo.add_duplex(id(r, c), id(r + 1, c),
                        LinkAttr{d.capacity_bps, d.prop_delay_s});
      }
    }
  }
  return topo;
}

Topology make_full_mesh(std::size_t n, BuilderDefaults d) {
  assert(n >= 2);
  Topology topo;
  topo.add_nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      topo.add_duplex(static_cast<NodeId>(i), static_cast<NodeId>(j),
                      LinkAttr{d.capacity_bps, d.prop_delay_s});
    }
  }
  return topo;
}

Topology make_waxman(std::size_t n, double a, double b, Rng& rng,
                     double capacity_bps, double max_prop_delay_s,
                     double min_prop_delay_s) {
  assert(n >= 3);
  assert(a > 0 && a <= 1);
  assert(b > 0);
  Topology topo;
  topo.add_nodes(n);
  std::vector<std::pair<double, double>> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos.emplace_back(rng.uniform(), rng.uniform());
  }
  const double diagonal = std::sqrt(2.0);
  const auto dist = [&pos](std::size_t i, std::size_t j) {
    const double dx = pos[i].first - pos[j].first;
    const double dy = pos[i].second - pos[j].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  const auto attr_for = [&](double d2) {
    return LinkAttr{capacity_bps,
                    std::max({1e-6, min_prop_delay_s,
                              max_prop_delay_s * d2 / diagonal})};
  };
  // Spanning ring for connectivity (short hops: ring over a random order
  // would create long links; accept the simple ring on node ids).
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    topo.add_duplex(static_cast<NodeId>(i), static_cast<NodeId>(j),
                    attr_for(dist(i, j)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {
      if (i == 0 && j == n - 1) continue;
      const double d2 = dist(i, j);
      if (rng.bernoulli(a * std::exp(-d2 / (b * diagonal)))) {
        topo.add_duplex(static_cast<NodeId>(i), static_cast<NodeId>(j),
                        attr_for(d2));
      }
    }
  }
  return topo;
}

Topology make_random(std::size_t n, double p, Rng& rng, BuilderDefaults d) {
  assert(n >= 3);
  assert(p >= 0.0 && p <= 1.0);
  Topology topo;
  topo.add_nodes(n);
  const LinkAttr attr{d.capacity_bps, d.prop_delay_s};
  // Spanning ring for connectivity, then Gilbert chords.
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_duplex(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                    attr);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {
      if (i == 0 && j == n - 1) continue;  // ring already has it
      if (rng.bernoulli(p)) {
        topo.add_duplex(static_cast<NodeId>(i), static_cast<NodeId>(j), attr);
      }
    }
  }
  return topo;
}

}  // namespace mdr::topo
