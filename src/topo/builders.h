// Topology builders (paper Fig. 8 plus synthetic generators for tests).
//
// CAIRN and NET1 are reconstructions: the paper's figure is not
// machine-readable in the surviving text, so we rebuild them from what is
// stated — CAIRN's node names and 11 flow pairs, link capacities capped at
// 10 Mb/s; NET1 "contrived", diameter four, node degrees between 3 and 5,
// "connectivity high enough to ensure the existence of multiple paths and
// small enough to prevent a large number of one-hop paths". See DESIGN.md §5.
#pragma once

#include <cstdint>

#include "graph/topology.h"
#include "util/rng.h"

namespace mdr::topo {

/// Default link attributes used by the paper-style builders.
struct BuilderDefaults {
  double capacity_bps = 10e6;   ///< paper: "restricted ... to a maximum of 10Mbs"
  double prop_delay_s = 1e-3;
};

/// The 1999 CAIRN research network (22 routers, sparse research backbone).
/// All routers named as in the paper; long-haul links get larger propagation
/// delays than metro links.
graph::Topology make_cairn();

/// The paper's contrived NET1: 10 routers, degrees 3-5, diameter 4.
graph::Topology make_net1();

/// n-node ring (each node linked to its two neighbors).
graph::Topology make_ring(std::size_t n, BuilderDefaults d = {});

/// rows x cols grid with 4-neighbor links.
graph::Topology make_grid(std::size_t rows, std::size_t cols,
                          BuilderDefaults d = {});

/// Full mesh over n nodes.
graph::Topology make_full_mesh(std::size_t n, BuilderDefaults d = {});

/// Connected Gilbert G(n, p) random graph: every undirected pair is linked
/// with probability p; a spanning ring guarantees connectivity.
graph::Topology make_random(std::size_t n, double p, Rng& rng,
                            BuilderDefaults d = {});

/// Connected Waxman random graph: n nodes placed uniformly in the unit
/// square, each pair linked with probability a*exp(-dist/(b*sqrt(2))), plus
/// a spanning ring for connectivity. Propagation delays are proportional to
/// Euclidean distance (scaled so the diagonal costs max_prop_delay_s) — the
/// classic internet-like testbed generator. `min_prop_delay_s` floors every
/// link's delay — the sharded engine's lookahead is the minimum cross-shard
/// propagation delay, so a floor keeps windows from collapsing to the
/// microscopic delay of two coincidentally-adjacent nodes (0 = no floor).
graph::Topology make_waxman(std::size_t n, double a, double b, Rng& rng,
                            double capacity_bps = 10e6,
                            double max_prop_delay_s = 5e-3,
                            double min_prop_delay_s = 0);

}  // namespace mdr::topo
