#include "topo/flows.h"

#include <cassert>

namespace mdr::topo {

std::vector<FlowSpec> cairn_flows(double scale) {
  // Paper: "(lbl, mci-r), (netstar, isi-e), (isi, darpa), (parc, sdsc),
  // (sri, mit), (tioc, sdsc), (mit, sri), (isi-e, netstar), (sdsc, parc),
  // (mci-r, tioc), (darpa, isi)". Rates: deterministic 1.0-3.0 Mb/s band.
  const double mb = 1e6 * scale;
  return {
      {"lbl", "mci-r", 2.2 * mb},   {"netstar", "isi-e", 1.6 * mb},
      {"isi", "darpa", 2.8 * mb},   {"parc", "sdsc", 1.8 * mb},
      {"sri", "mit", 2.4 * mb},     {"tioc", "sdsc", 1.4 * mb},
      {"mit", "sri", 2.0 * mb},     {"isi-e", "netstar", 1.2 * mb},
      {"sdsc", "parc", 2.6 * mb},   {"mci-r", "tioc", 1.0 * mb},
      {"darpa", "isi", 3.0 * mb},
  };
}

std::vector<FlowSpec> net1_flows(double scale) {
  // Paper: "(9,2), (8,3), (7,0), (6,1), (5,8), (4,1), (3,8), (2,9), (1,6),
  // (0,7)".
  const double mb = 1e6 * scale;
  return {
      {"9", "2", 2.4 * mb}, {"8", "3", 1.8 * mb}, {"7", "0", 2.8 * mb},
      {"6", "1", 1.4 * mb}, {"5", "8", 2.0 * mb}, {"4", "1", 1.6 * mb},
      {"3", "8", 2.6 * mb}, {"2", "9", 1.2 * mb}, {"1", "6", 3.0 * mb},
      {"0", "7", 2.2 * mb},
  };
}

std::vector<FlowSpec> random_flows(const graph::Topology& topo,
                                   std::size_t count, double mean_rate_bps,
                                   Rng& rng) {
  assert(topo.num_nodes() >= 2);
  const int last = static_cast<int>(topo.num_nodes()) - 1;
  std::vector<FlowSpec> flows;
  flows.reserve(count);
  for (std::size_t f = 0; f < count; ++f) {
    const auto src = static_cast<graph::NodeId>(rng.uniform_int(0, last));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<graph::NodeId>(rng.uniform_int(0, last));
    }
    flows.push_back(FlowSpec{std::string(topo.name(src)),
                             std::string(topo.name(dst)),
                             mean_rate_bps * rng.uniform(0.5, 1.5)});
  }
  return flows;
}

flow::TrafficMatrix to_traffic_matrix(const graph::Topology& topo,
                                      const std::vector<FlowSpec>& flows) {
  flow::TrafficMatrix matrix(topo.num_nodes());
  for (const FlowSpec& f : flows) {
    const graph::NodeId src = topo.find_node(f.src);
    const graph::NodeId dst = topo.find_node(f.dst);
    assert(src != graph::kInvalidNode);
    assert(dst != graph::kInvalidNode);
    matrix.add(src, dst, f.rate_bps);
  }
  return matrix;
}

}  // namespace mdr::topo
