// Small statistics toolkit used for measurement windows and experiment
// reporting: streaming moments, EWMA smoothing, and percentile summaries.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "ckpt/ckpt.h"

namespace mdr {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void reset() { *this = OnlineStats{}; }

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void save(ckpt::Writer& w) const {
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
  }
  void load(ckpt::Reader& r) {
    n_ = r.u64();
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
  }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    mean_ += delta * nb / (na + nb);
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
/// Exact table for the small replication counts experiments actually use
/// (df <= 30); the normal-approximation 1.96 beyond that.
inline double student_t95(std::size_t df) {
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  return 1.96;
}

/// Half-width of the 95% confidence interval of the mean of the accumulated
/// samples: t_{0.975, n-1} * stddev / sqrt(n). Zero for fewer than two
/// samples (no variance estimate).
inline double ci95_halfwidth(const OnlineStats& s) {
  if (s.count() < 2) return 0.0;
  return student_t95(s.count() - 1) * s.stddev() /
         std::sqrt(static_cast<double>(s.count()));
}

/// Exponentially weighted moving average with configurable smoothing factor.
///
/// alpha is the weight of a new sample: value = alpha*x + (1-alpha)*value.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.25) : alpha_(alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
  }

  void add(double x) {
    if (!seeded_) {
      value_ = x;
      seeded_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool seeded() const { return seeded_; }
  double value() const { return value_; }
  void reset() { seeded_ = false; value_ = 0.0; }

  void save(ckpt::Writer& w) const {
    w.f64(value_);
    w.b(seeded_);
  }
  void load(ckpt::Reader& r) {
    value_ = r.f64();
    seeded_ = r.b();
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Sample reservoir with exact percentiles; intended for per-flow delay
/// distributions where sample counts are modest (<= a few million).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_valid_ = false;
  }
  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  /// Exact q-quantile (q in [0,1]) by nearest-rank; 0.5 is the median.
  /// The sorted order is computed lazily on the first query after an add()
  /// and cached, so repeated queries cost O(1) instead of a full sort each.
  double percentile(double q) const {
    assert(!xs_.empty());
    assert(q >= 0.0 && q <= 1.0);
    if (!sorted_valid_) {
      sorted_ = xs_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted_.size() - 1) + 0.5);
    return sorted_[std::min(rank, sorted_.size() - 1)];
  }

  const std::vector<double>& values() const { return xs_; }

  void save(ckpt::Writer& w) const {
    w.u64(xs_.size());
    for (double x : xs_) w.f64(x);
  }
  void load(ckpt::Reader& r) {
    xs_.resize(r.u64());
    for (double& x : xs_) x = r.f64();
    sorted_.clear();
    sorted_valid_ = false;
  }

  void reset() {
    xs_.clear();
    sorted_.clear();
    sorted_valid_ = false;
  }

 private:
  std::vector<double> xs_;
  mutable std::vector<double> sorted_;  ///< lazily sorted copy of xs_
  mutable bool sorted_valid_ = false;
};

}  // namespace mdr
