// Minimal leveled logging to stderr.
//
// The simulator and protocol engines are silent by default; raise the level
// for protocol traces when debugging. Not thread-safe by design: the whole
// library is single-threaded discrete-event code.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace mdr {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace detail {
inline LogLevel& log_level_ref() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}
}  // namespace detail

inline void set_log_level(LogLevel level) { detail::log_level_ref() = level; }
inline LogLevel log_level() { return detail::log_level_ref(); }

template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  static const char* names[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  std::fprintf(stderr, "[%s] ", names[static_cast<int>(level)]);
  if constexpr (sizeof...(Args) == 0) {
    std::fputs(fmt, stderr);
  } else {
    std::fprintf(stderr, fmt, std::forward<Args>(args)...);
  }
  std::fputc('\n', stderr);
}

#define MDR_LOG_DEBUG(...) ::mdr::log(::mdr::LogLevel::kDebug, __VA_ARGS__)
#define MDR_LOG_INFO(...) ::mdr::log(::mdr::LogLevel::kInfo, __VA_ARGS__)
#define MDR_LOG_WARN(...) ::mdr::log(::mdr::LogLevel::kWarn, __VA_ARGS__)
#define MDR_LOG_ERROR(...) ::mdr::log(::mdr::LogLevel::kError, __VA_ARGS__)

}  // namespace mdr
