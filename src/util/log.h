// Minimal leveled logging to stderr.
//
// The simulator and protocol engines are silent by default; raise the level
// for protocol traces when debugging. Thread-safe: each message is formatted
// into a single buffer and written with one fwrite under a mutex, so the
// runner's worker threads never interleave partial lines. When a simulation
// clock is installed for the current thread (ScopedLogClock, done by
// NetworkSim::run()), messages are stamped with the current sim time.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>

namespace mdr {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace detail {
inline LogLevel& log_level_ref() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

inline std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

/// Per-thread pointer to the active simulation clock (seconds); null outside
/// a sim context. Thread-local because each runner worker drives its own sim.
inline const double*& log_clock_ref() {
  thread_local const double* clock = nullptr;
  return clock;
}
}  // namespace detail

inline void set_log_level(LogLevel level) { detail::log_level_ref() = level; }
inline LogLevel log_level() { return detail::log_level_ref(); }

/// Installs `clock` as this thread's log timestamp source for the scope's
/// lifetime (nesting restores the previous clock).
class ScopedLogClock {
 public:
  explicit ScopedLogClock(const double* clock)
      : prev_(detail::log_clock_ref()) {
    detail::log_clock_ref() = clock;
  }
  ~ScopedLogClock() { detail::log_clock_ref() = prev_; }
  ScopedLogClock(const ScopedLogClock&) = delete;
  ScopedLogClock& operator=(const ScopedLogClock&) = delete;

 private:
  const double* prev_;
};

template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  static const char* names[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  char line[1024];
  const double* clock = detail::log_clock_ref();
  int prefix =
      clock != nullptr
          ? std::snprintf(line, sizeof line, "[%s t=%.6f] ",
                          names[static_cast<int>(level)], *clock)
          : std::snprintf(line, sizeof line, "[%s] ",
                          names[static_cast<int>(level)]);
  if (prefix < 0) return;
  auto offset = std::min(static_cast<std::size_t>(prefix), sizeof line - 1);
  if constexpr (sizeof...(Args) == 0) {
    std::snprintf(line + offset, sizeof line - offset, "%s", fmt);
  } else {
    std::snprintf(line + offset, sizeof line - offset, fmt,
                  std::forward<Args>(args)...);
  }
  // Overlong messages are truncated to the buffer; the trailing newline is
  // always kept so concurrent writers stay line-atomic.
  const std::size_t len = std::min(std::strlen(line), sizeof line - 2);
  line[len] = '\n';
  const std::lock_guard<std::mutex> lock(detail::log_mutex());
  std::fwrite(line, 1, len + 1, stderr);
}

#define MDR_LOG_DEBUG(...) ::mdr::log(::mdr::LogLevel::kDebug, __VA_ARGS__)
#define MDR_LOG_INFO(...) ::mdr::log(::mdr::LogLevel::kInfo, __VA_ARGS__)
#define MDR_LOG_WARN(...) ::mdr::log(::mdr::LogLevel::kWarn, __VA_ARGS__)
#define MDR_LOG_ERROR(...) ::mdr::log(::mdr::LogLevel::kError, __VA_ARGS__)

}  // namespace mdr
