// Simulation time primitives.
//
// All simulation clocks in this library are doubles measured in seconds.
// The aliases below exist to make interfaces self-describing; arithmetic on
// them is plain double arithmetic.
#pragma once

#include <limits>

namespace mdr {

/// Absolute simulation time in seconds since the start of the run.
using Time = double;

/// A span of simulation time in seconds.
using Duration = double;

/// Sentinel for "never" / "not yet scheduled".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Converts milliseconds to the library's canonical seconds.
constexpr Duration from_ms(double ms) { return ms * 1e-3; }

/// Converts the library's canonical seconds to milliseconds.
constexpr double to_ms(Duration s) { return s * 1e3; }

/// Converts microseconds to seconds.
constexpr Duration from_us(double us) { return us * 1e-6; }

}  // namespace mdr
