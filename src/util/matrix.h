// Dense row-major matrix over a flat buffer; used for per-(node,destination)
// routing state where both dimensions are small and fixed.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace mdr {

template <typename T>
class FlatMatrix {
 public:
  FlatMatrix() = default;
  FlatMatrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void assign(std::size_t rows, std::size_t cols, T fill = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  std::vector<T>& raw() { return data_; }
  const std::vector<T>& raw() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace mdr
