// Deterministic random number generation for simulations and tests.
//
// Every stochastic component takes an explicit Rng (or a seed) so whole
// experiments are reproducible from a single 64-bit seed.
#pragma once

#include <cassert>
#include <cstdint>
#include <random>
#include <span>
#include <sstream>
#include <vector>

#include "ckpt/ckpt.h"

namespace mdr {

/// A seeded pseudo-random generator with the distributions the library needs.
///
/// Wraps std::mt19937_64. Copyable; copies evolve independently, which makes
/// it easy to give each traffic source or router its own stream derived from
/// the experiment seed (see split()).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    assert(mean > 0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  ///
  /// Weights must be non-negative with a positive sum; zero-weight entries
  /// are never selected.
  std::size_t pick_weighted(std::span<const double> weights) {
    assert(!weights.empty());
    double total = 0;
    for (double w : weights) {
      assert(w >= 0);
      total += w;
    }
    assert(total > 0);
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;  // guards against rounding at the boundary
  }

  /// Derives an independent child stream; ith call with the same parent state
  /// yields the same child, so per-entity streams are stable across runs.
  Rng split() { return Rng(engine_() ^ 0xd1b54a32d192ed03ull); }

  std::mt19937_64& engine() { return engine_; }

  /// Serializes the full engine state (textual mt19937_64 dump, which the
  /// standard guarantees restores the exact stream position).
  void save(ckpt::Writer& w) const {
    std::ostringstream os;
    os << engine_;
    w.str(os.str());
  }
  void load(ckpt::Reader& r) {
    std::istringstream is(r.str());
    is >> engine_;
    if (!is) throw ckpt::Error("bad rng state in checkpoint");
  }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace mdr
