// Routing parameters (the paper's phi_ijk).
//
// phi_ijk is the fraction of the traffic at router i destined to j that
// leaves over link (i, k). Property 1 of the paper pins the valid shapes:
// zero on non-links and at the destination, non-negative, and summing to 1
// over the out-links. A RoutingParameters object stores phi for every
// (router, destination) pair, aligned with Topology::out_links(i).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/dag.h"
#include "graph/topology.h"

namespace mdr::flow {

class RoutingParameters {
 public:
  explicit RoutingParameters(const graph::Topology& topo);

  const graph::Topology& topology() const { return *topo_; }

  /// phi vector of (node, dest), indexed like topo.out_links(node).
  std::span<const double> at(graph::NodeId node, graph::NodeId dest) const;
  std::span<double> at_mutable(graph::NodeId node, graph::NodeId dest);

  double get(graph::NodeId node, graph::NodeId dest,
             std::size_t out_index) const;
  void set(graph::NodeId node, graph::NodeId dest, std::size_t out_index,
           double value);

  /// Zeroes the whole (node, dest) vector.
  void clear(graph::NodeId node, graph::NodeId dest);

  /// Routes everything over one out-link.
  void set_single_path(graph::NodeId node, graph::NodeId dest,
                       std::size_t out_index);

  /// Successor sets S_i(dest) implied by phi (Eq. 9): neighbors with
  /// positive routing parameter.
  graph::SuccessorSets successor_sets(graph::NodeId dest) const;

  /// Checks Property 1 within `tol`. Routers with an all-zero vector for a
  /// destination are treated as "no route" and allowed (the packet plane
  /// drops; the flow plane requires routes only where traffic exists).
  /// On failure, returns false and describes the violation in `why` if
  /// non-null.
  bool satisfies_property1(double tol = 1e-9, std::string* why = nullptr) const;

  /// True if the (node, dest) vector is all-zero (no route).
  bool unrouted(graph::NodeId node, graph::NodeId dest) const;

 private:
  std::size_t slot(graph::NodeId node, graph::NodeId dest) const;

  const graph::Topology* topo_;
  // Per (node, dest): a dense vector sized to the node's out-degree.
  std::vector<std::vector<double>> values_;
};

}  // namespace mdr::flow
