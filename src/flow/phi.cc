#include "flow/phi.h"

#include <cassert>
#include <cmath>

namespace mdr::flow {

using graph::NodeId;

RoutingParameters::RoutingParameters(const graph::Topology& topo)
    : topo_(&topo) {
  values_.resize(topo.num_nodes() * topo.num_nodes());
  for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
    for (NodeId j = 0; j < static_cast<NodeId>(topo.num_nodes()); ++j) {
      values_[slot(i, j)].assign(topo.out_links(i).size(), 0.0);
    }
  }
}

std::size_t RoutingParameters::slot(NodeId node, NodeId dest) const {
  assert(node >= 0 && static_cast<std::size_t>(node) < topo_->num_nodes());
  assert(dest >= 0 && static_cast<std::size_t>(dest) < topo_->num_nodes());
  return static_cast<std::size_t>(node) * topo_->num_nodes() +
         static_cast<std::size_t>(dest);
}

std::span<const double> RoutingParameters::at(NodeId node, NodeId dest) const {
  return values_[slot(node, dest)];
}

std::span<double> RoutingParameters::at_mutable(NodeId node, NodeId dest) {
  return values_[slot(node, dest)];
}

double RoutingParameters::get(NodeId node, NodeId dest,
                              std::size_t out_index) const {
  return values_[slot(node, dest)][out_index];
}

void RoutingParameters::set(NodeId node, NodeId dest, std::size_t out_index,
                            double value) {
  assert(value >= 0.0);
  values_[slot(node, dest)][out_index] = value;
}

void RoutingParameters::clear(NodeId node, NodeId dest) {
  auto& v = values_[slot(node, dest)];
  v.assign(v.size(), 0.0);
}

void RoutingParameters::set_single_path(NodeId node, NodeId dest,
                                        std::size_t out_index) {
  clear(node, dest);
  values_[slot(node, dest)][out_index] = 1.0;
}

graph::SuccessorSets RoutingParameters::successor_sets(NodeId dest) const {
  graph::SuccessorSets sets(topo_->num_nodes());
  for (NodeId i = 0; i < static_cast<NodeId>(topo_->num_nodes()); ++i) {
    if (i == dest) continue;
    const auto links = topo_->out_links(i);
    const auto& phi = values_[slot(i, dest)];
    for (std::size_t x = 0; x < links.size(); ++x) {
      if (phi[x] > 0.0) sets[i].push_back(topo_->link(links[x]).to);
    }
  }
  return sets;
}

bool RoutingParameters::unrouted(NodeId node, NodeId dest) const {
  for (double v : values_[slot(node, dest)]) {
    if (v > 0.0) return false;
  }
  return true;
}

bool RoutingParameters::satisfies_property1(double tol,
                                            std::string* why) const {
  const auto fail = [&](std::string message) {
    if (why != nullptr) *why = std::move(message);
    return false;
  };
  const auto n = static_cast<NodeId>(topo_->num_nodes());
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      const auto& phi = values_[slot(i, j)];
      double sum = 0.0;
      bool any = false;
      for (double v : phi) {
        if (v < -tol || !std::isfinite(v)) {
          return fail("negative or non-finite phi at node " +
                      std::to_string(i) + " dest " + std::to_string(j));
        }
        sum += v;
        any = any || v > 0.0;
      }
      if (i == j) {
        if (any) {
          return fail("phi must be zero at the destination (node " +
                      std::to_string(i) + ")");
        }
        continue;
      }
      if (any && std::abs(sum - 1.0) > tol) {
        return fail("phi sums to " + std::to_string(sum) + " at node " +
                    std::to_string(i) + " dest " + std::to_string(j));
      }
    }
  }
  return true;
}

}  // namespace mdr::flow
