// Flow-level evaluation of a routing-parameter set (paper Eqs. 1-3).
//
// Given the input traffic r and routing parameters phi, this module solves
// the conservation equations
//
//     t_ij = r_ij + sum_k t_kj * phi_kji            (Eq. 1)
//     f_ik = sum_j t_ij * phi_ijk                   (Eq. 2)
//
// and evaluates the network-wide delay rate D_T = sum D_ik(f_ik) (Eq. 3)
// plus the per-commodity expected per-packet delays that the paper's figures
// plot. Conservation is solved exactly in topological order when the
// per-destination successor graphs are acyclic (the normal case: both OPT's
// blocking and the LFI conditions guarantee it); a damped fixed-point
// fallback covers arbitrary phi so tests can evaluate deliberately broken
// configurations.
#pragma once

#include <vector>

#include "flow/network.h"
#include "flow/phi.h"
#include "util/matrix.h"

namespace mdr::flow {

struct FlowAssignment {
  /// t_ij: total traffic (bits/s) at node i destined to j.
  FlatMatrix<double> node_traffic;
  /// f per link id (bits/s).
  std::vector<double> link_flows;
  /// False if conservation could not be solved (cyclic phi that did not
  /// converge, or traffic routed into a dead end).
  bool valid = true;
  /// Traffic (bits/s) that reached a router with no route to its
  /// destination; nonzero values mean phi is incomplete for this traffic.
  double stranded_bps = 0;
};

/// Solves Eqs. (1)-(2).
FlowAssignment compute_flows(const FlowNetwork& net,
                             const TrafficMatrix& traffic,
                             const RoutingParameters& phi);

/// D_T of Eq. (3) for the given link flows; +inf if any link is overloaded.
double total_delay_rate(const FlowNetwork& net,
                        std::span<const double> link_flows);

/// Expected per-packet end-to-end delay of traffic at node i destined to j:
/// T_ij = sum_k phi_ijk (w_ik(f) + T_kj). Entries are +inf where no route
/// exists (and 0 on the diagonal).
FlatMatrix<double> commodity_delays(const FlowNetwork& net,
                                    const RoutingParameters& phi,
                                    std::span<const double> link_flows);

/// Convenience: network-average per-packet delay weighted by input rates,
/// i.e. sum_ij r_ij T_ij / sum_ij r_ij. +inf if any commodity with traffic
/// has no route or a link is overloaded.
double average_delay(const FlowNetwork& net, const TrafficMatrix& traffic,
                     const RoutingParameters& phi);

}  // namespace mdr::flow
