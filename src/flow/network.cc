#include "flow/network.h"

namespace mdr::flow {

FlowNetwork::FlowNetwork(const graph::Topology& topo, double mean_packet_bits)
    : topo_(&topo), mean_packet_bits_(mean_packet_bits) {
  assert(mean_packet_bits > 0);
  models_.reserve(topo.num_links());
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    const auto& attr = topo.link(id).attr;
    models_.push_back(cost::LinkDelayModel{attr.capacity_bps, attr.prop_delay_s,
                                           mean_packet_bits});
  }
}

std::vector<graph::Cost> FlowNetwork::zero_load_costs() const {
  std::vector<graph::Cost> costs;
  costs.reserve(models_.size());
  for (const auto& m : models_) costs.push_back(m.marginal_delay(0.0));
  return costs;
}

std::vector<graph::Cost> FlowNetwork::marginal_costs(
    std::span<const double> link_flows) const {
  assert(link_flows.size() == models_.size());
  std::vector<graph::Cost> costs;
  costs.reserve(models_.size());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    costs.push_back(models_[i].marginal_delay_clamped(link_flows[i]));
  }
  return costs;
}

}  // namespace mdr::flow
