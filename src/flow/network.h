// Flow-level network: a Topology plus a delay model per directed link and an
// input traffic matrix (the paper's r_ij, bits/s entering at i destined to j).
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "cost/delay_model.h"
#include "graph/topology.h"
#include "util/matrix.h"

namespace mdr::flow {

class FlowNetwork {
 public:
  /// Builds a flow network whose per-link delay models take capacity and
  /// propagation delay from the topology's link attributes.
  FlowNetwork(const graph::Topology& topo, double mean_packet_bits);

  const graph::Topology& topology() const { return *topo_; }
  double mean_packet_bits() const { return mean_packet_bits_; }

  const cost::LinkDelayModel& model(graph::LinkId link) const {
    return models_[link];
  }

  /// Zero-load marginal cost of every link (one-packet latency); the seed
  /// costs for shortest-path initialization.
  std::vector<graph::Cost> zero_load_costs() const;

  /// Marginal cost D'(f) per link for the given link flows (bits/s),
  /// clamped near capacity.
  std::vector<graph::Cost> marginal_costs(
      std::span<const double> link_flows) const;

 private:
  const graph::Topology* topo_;
  double mean_packet_bits_;
  std::vector<cost::LinkDelayModel> models_;
};

/// Input traffic matrix r_ij in bits/s.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::size_t num_nodes)
      : rates_(num_nodes, num_nodes, 0.0) {}

  void add(graph::NodeId src, graph::NodeId dst, double rate_bps) {
    assert(src != dst);
    assert(rate_bps >= 0);
    rates_(src, dst) += rate_bps;
  }

  double rate(graph::NodeId src, graph::NodeId dst) const {
    return rates_(src, dst);
  }

  std::size_t num_nodes() const { return rates_.rows(); }

  /// Sum of all input rates (bits/s).
  double total() const {
    double sum = 0;
    for (double r : rates_.raw()) sum += r;
    return sum;
  }

  /// Scales every entry by `factor` (load sweeps).
  TrafficMatrix scaled(double factor) const {
    TrafficMatrix out = *this;
    for (double& r : out.rates_.raw()) r *= factor;
    return out;
  }

 private:
  mdr::FlatMatrix<double> rates_;
};

}  // namespace mdr::flow
