#include "flow/evaluate.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "graph/dag.h"

namespace mdr::flow {

using graph::NodeId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Solves Eq. (1) for one destination in topological order; returns false if
// the successor graph has a cycle. t[] must be pre-seeded with r_ij.
bool propagate_in_topo_order(const graph::Topology& topo,
                             const RoutingParameters& phi, NodeId dest,
                             std::vector<double>& t,
                             std::vector<double>& link_flows,
                             double& stranded_bps) {
  const auto succ = phi.successor_sets(dest);
  const auto order = graph::topological_order(succ);
  if (!order.has_value()) return false;
  for (NodeId i : *order) {
    if (i == dest || t[i] <= 0.0) continue;
    const auto phis = phi.at(i, dest);
    const auto links = topo.out_links(i);
    double forwarded = 0.0;
    for (std::size_t x = 0; x < links.size(); ++x) {
      if (phis[x] <= 0.0) continue;
      const double share = t[i] * phis[x];
      link_flows[links[x]] += share;
      t[topo.link(links[x]).to] += share;
      forwarded += share;
    }
    if (forwarded <= 0.0) stranded_bps += t[i];  // dead end (no route)
  }
  return true;
}

// Damped Gauss-Seidel fallback for cyclic phi. Converges whenever the
// spectral radius of the routing matrix is < 1 (true unless phi traps
// traffic in a lossless loop, which we cap with an iteration limit).
bool propagate_fixed_point(const graph::Topology& topo,
                           const RoutingParameters& phi, NodeId dest,
                           const TrafficMatrix& traffic,
                           std::vector<double>& t,
                           std::vector<double>& link_flows,
                           double& stranded_bps) {
  const auto n = static_cast<NodeId>(topo.num_nodes());
  constexpr int kMaxSweeps = 10'000;
  constexpr double kTol = 1e-7;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double max_change = 0.0;
    for (NodeId i = 0; i < n; ++i) {
      if (i == dest) continue;
      double incoming = traffic.rate(i, dest);
      for (NodeId k : topo.neighbors(i)) {
        const auto kphis = phi.at(k, dest);
        const auto klinks = topo.out_links(k);
        for (std::size_t x = 0; x < klinks.size(); ++x) {
          if (topo.link(klinks[x]).to == i) incoming += t[k] * kphis[x];
        }
      }
      max_change = std::max(max_change, std::abs(incoming - t[i]));
      t[i] = incoming;
    }
    if (max_change < kTol) {
      for (NodeId i = 0; i < n; ++i) {
        if (i == dest || t[i] <= 0.0) continue;
        const auto phis = phi.at(i, dest);
        const auto links = topo.out_links(i);
        double forwarded = 0.0;
        for (std::size_t x = 0; x < links.size(); ++x) {
          const double share = t[i] * phis[x];
          link_flows[links[x]] += share;
          forwarded += share;
        }
        if (forwarded <= 0.0) stranded_bps += t[i];
      }
      return true;
    }
  }
  return false;
}

}  // namespace

FlowAssignment compute_flows(const FlowNetwork& net,
                             const TrafficMatrix& traffic,
                             const RoutingParameters& phi) {
  const auto& topo = net.topology();
  const auto n = static_cast<NodeId>(topo.num_nodes());
  assert(traffic.num_nodes() == topo.num_nodes());

  FlowAssignment out;
  out.node_traffic.assign(topo.num_nodes(), topo.num_nodes(), 0.0);
  out.link_flows.assign(topo.num_links(), 0.0);

  for (NodeId j = 0; j < n; ++j) {
    std::vector<double> t(topo.num_nodes(), 0.0);
    for (NodeId i = 0; i < n; ++i) t[i] = traffic.rate(i, j);
    if (!propagate_in_topo_order(topo, phi, j, t, out.link_flows,
                                 out.stranded_bps)) {
      // Cyclic successor graph: re-seed and fall back to fixed point.
      for (NodeId i = 0; i < n; ++i) t[i] = traffic.rate(i, j);
      if (!propagate_fixed_point(topo, phi, j, traffic, t, out.link_flows,
                                 out.stranded_bps)) {
        out.valid = false;
      }
    }
    for (NodeId i = 0; i < n; ++i) out.node_traffic(i, j) = t[i];
  }
  return out;
}

double total_delay_rate(const FlowNetwork& net,
                        std::span<const double> link_flows) {
  double total = 0.0;
  for (std::size_t id = 0; id < link_flows.size(); ++id) {
    const double d = net.model(static_cast<graph::LinkId>(id))
                         .total_delay_rate(link_flows[id]);
    if (!std::isfinite(d)) return kInf;
    total += d;
  }
  return total;
}

FlatMatrix<double> commodity_delays(const FlowNetwork& net,
                                    const RoutingParameters& phi,
                                    std::span<const double> link_flows) {
  const auto& topo = net.topology();
  const auto n = static_cast<NodeId>(topo.num_nodes());
  FlatMatrix<double> delays(topo.num_nodes(), topo.num_nodes(), kInf);

  // Per-packet delay of every link at the given flows.
  std::vector<double> w(topo.num_links());
  for (std::size_t id = 0; id < w.size(); ++id) {
    w[id] =
        net.model(static_cast<graph::LinkId>(id)).packet_delay(link_flows[id]);
  }

  for (NodeId j = 0; j < n; ++j) {
    delays(j, j) = 0.0;
    const auto succ = phi.successor_sets(j);
    const auto order = graph::topological_order(succ);
    if (!order.has_value()) continue;  // cyclic: leave +inf
    // Destination-first: traverse the topological order backwards so every
    // T_kj is final before T_ij uses it.
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const NodeId i = *it;
      if (i == j) continue;
      const auto phis = phi.at(i, j);
      const auto links = topo.out_links(i);
      double total = 0.0;
      bool routed = false;
      bool finite = true;
      for (std::size_t x = 0; x < links.size(); ++x) {
        if (phis[x] <= 0.0) continue;
        routed = true;
        const NodeId k = topo.link(links[x]).to;
        const double leg = w[links[x]] + delays(k, j);
        if (!std::isfinite(leg)) {
          finite = false;
          break;
        }
        total += phis[x] * leg;
      }
      if (routed && finite) delays(i, j) = total;
    }
  }
  return delays;
}

double average_delay(const FlowNetwork& net, const TrafficMatrix& traffic,
                     const RoutingParameters& phi) {
  const auto flows = compute_flows(net, traffic, phi);
  if (!flows.valid || flows.stranded_bps > 0.0) return kInf;
  const auto delays = commodity_delays(net, phi, flows.link_flows);
  const auto n = static_cast<NodeId>(net.topology().num_nodes());
  double weighted = 0.0;
  double total_rate = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      const double r = traffic.rate(i, j);
      if (r <= 0.0) continue;
      if (!std::isfinite(delays(i, j))) return kInf;
      weighted += r * delays(i, j);
      total_rate += r;
    }
  }
  return total_rate > 0.0 ? weighted / total_rate : 0.0;
}

}  // namespace mdr::flow
