// Link-state tables (paper Section 4.1).
//
// LinkStateTable is the representation of both the main topology table T^i
// and the per-neighbor topology tables T^i_k: a set of directed links with
// costs, diffable so a router can advertise exactly what changed.
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "ckpt/ckpt.h"
#include "graph/dijkstra.h"
#include "graph/topology.h"
#include "proto/lsu.h"

namespace mdr::proto {

class LinkStateTable {
 public:
  /// Installs or updates a directed link. Returns whether the table
  /// changed (false when the link already had exactly this cost), so
  /// callers can maintain per-head dirty sets.
  bool set(graph::NodeId head, graph::NodeId tail, graph::Cost cost);

  /// Removes a link if present. Returns whether a link was removed.
  bool remove(graph::NodeId head, graph::NodeId tail);

  /// Applies one LSU entry (add/change or delete). Returns whether the
  /// table changed.
  bool apply(const LsuEntry& entry);

  std::optional<graph::Cost> cost(graph::NodeId head,
                                  graph::NodeId tail) const;

  void clear() { links_.clear(); }
  std::size_t size() const { return links_.size(); }
  bool empty() const { return links_.empty(); }

  /// Snapshot as costed edges (Dijkstra input).
  std::vector<graph::CostedEdge> edges() const;

  /// The links whose head is `head`, as (tail, cost) pairs in tail order
  /// (what MTU copies from the preferred neighbor's table).
  std::vector<std::pair<graph::NodeId, graph::Cost>> links_from(
      graph::NodeId head) const;

  /// Snapshot as add/change LSU entries (full-topology sync on link-up).
  std::vector<LsuEntry> as_entries() const;

  /// Replaces this table's row `head` with `src`'s row `head` in one
  /// hinted two-pointer merge: no allocation, amortized O(1) per link.
  /// Calls on_set(tail, cost) for every link actually inserted or
  /// re-costed and on_del(tail) for every link actually removed — the
  /// same change conditions as per-link set()/remove().
  template <class OnSet, class OnDel>
  void replace_row_from(graph::NodeId head, const LinkStateTable& src,
                        OnSet&& on_set, OnDel&& on_del) {
    constexpr auto kLow = std::numeric_limits<graph::NodeId>::lowest();
    auto it = links_.lower_bound({head, kLow});
    auto jt = src.links_.lower_bound({head, kLow});
    while (true) {
      const bool mine = it != links_.end() && it->first.first == head;
      const bool theirs = jt != src.links_.end() && jt->first.first == head;
      if (!mine && !theirs) break;
      if (!mine || (theirs && jt->first.second < it->first.second)) {
        it = links_.emplace_hint(it, jt->first, jt->second);
        on_set(jt->first.second, jt->second);
        ++it;
        ++jt;
      } else if (!theirs || it->first.second < jt->first.second) {
        on_del(it->first.second);
        it = links_.erase(it);
      } else {
        if (it->second != jt->second) {
          it->second = jt->second;
          on_set(jt->first.second, jt->second);
        }
        ++it;
        ++jt;
      }
    }
  }

  /// Removes every link of row `head`, calling on_del(tail) per link.
  template <class OnDel>
  void clear_row(graph::NodeId head, OnDel&& on_del) {
    constexpr auto kLow = std::numeric_limits<graph::NodeId>::lowest();
    auto it = links_.lower_bound({head, kLow});
    while (it != links_.end() && it->first.first == head) {
      on_del(it->first.second);
      it = links_.erase(it);
    }
  }

  /// Entries that transform `before` into `after`: kAddOrChange for new or
  /// re-costed links, kDelete for vanished ones. Deterministic order.
  static std::vector<LsuEntry> diff(const LinkStateTable& before,
                                    const LinkStateTable& after);

  friend bool operator==(const LinkStateTable&, const LinkStateTable&) = default;

  void save(ckpt::Writer& w) const {
    w.u64(links_.size());
    for (const auto& [key, cost] : links_) {
      w.i64(key.first);
      w.i64(key.second);
      w.f64(cost);
    }
  }
  void load(ckpt::Reader& r) {
    links_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto head = static_cast<graph::NodeId>(r.i64());
      const auto tail = static_cast<graph::NodeId>(r.i64());
      links_[{head, tail}] = r.f64();
    }
  }

 private:
  using Key = std::pair<graph::NodeId, graph::NodeId>;
  std::map<Key, graph::Cost> links_;  // ordered: deterministic diffs
};

}  // namespace mdr::proto
