// Link-state tables (paper Section 4.1).
//
// LinkStateTable is the representation of both the main topology table T^i
// and the per-neighbor topology tables T^i_k: a set of directed links with
// costs, diffable so a router can advertise exactly what changed.
#pragma once

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "ckpt/ckpt.h"
#include "graph/dijkstra.h"
#include "graph/topology.h"
#include "proto/lsu.h"

namespace mdr::proto {

class LinkStateTable {
 public:
  /// Installs or updates a directed link.
  void set(graph::NodeId head, graph::NodeId tail, graph::Cost cost);

  /// Removes a link if present.
  void remove(graph::NodeId head, graph::NodeId tail);

  /// Applies one LSU entry (add/change or delete).
  void apply(const LsuEntry& entry);

  std::optional<graph::Cost> cost(graph::NodeId head,
                                  graph::NodeId tail) const;

  void clear() { links_.clear(); }
  std::size_t size() const { return links_.size(); }
  bool empty() const { return links_.empty(); }

  /// Snapshot as costed edges (Dijkstra input).
  std::vector<graph::CostedEdge> edges() const;

  /// The links whose head is `head`, as (tail, cost) pairs in tail order
  /// (what MTU copies from the preferred neighbor's table).
  std::vector<std::pair<graph::NodeId, graph::Cost>> links_from(
      graph::NodeId head) const;

  /// Snapshot as add/change LSU entries (full-topology sync on link-up).
  std::vector<LsuEntry> as_entries() const;

  /// Entries that transform `before` into `after`: kAddOrChange for new or
  /// re-costed links, kDelete for vanished ones. Deterministic order.
  static std::vector<LsuEntry> diff(const LinkStateTable& before,
                                    const LinkStateTable& after);

  friend bool operator==(const LinkStateTable&, const LinkStateTable&) = default;

  void save(ckpt::Writer& w) const {
    w.u64(links_.size());
    for (const auto& [key, cost] : links_) {
      w.i64(key.first);
      w.i64(key.second);
      w.f64(cost);
    }
  }
  void load(ckpt::Reader& r) {
    links_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto head = static_cast<graph::NodeId>(r.i64());
      const auto tail = static_cast<graph::NodeId>(r.i64());
      links_[{head, tail}] = r.f64();
    }
  }

 private:
  using Key = std::pair<graph::NodeId, graph::NodeId>;
  std::map<Key, graph::Cost> links_;  // ordered: deterministic diffs
};

}  // namespace mdr::proto
