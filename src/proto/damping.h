// Link-flap damping (RFC 2439 style) over hello adjacency events.
//
// A flapping adjacency — one that cycles up/down faster than the network
// can reconverge — makes every transition trigger a network-wide LSU flood:
// exactly the "excessive flooding" overhead the paper's report threshold is
// meant to avoid, re-created at the adjacency layer. The damper keeps an
// exponentially-decaying penalty per neighbor: every down transition adds a
// fixed penalty; once the penalty crosses `suppress_threshold` the neighbor
// is *suppressed* — it is withdrawn from routing once and further up
// transitions are swallowed instead of re-advertised — until decay brings
// the penalty below `reuse_threshold`, at which point the host re-announces
// the (still-up) adjacency.
//
// The damper is pure bookkeeping with an explicit clock: the host feeds it
// adjacency transitions (on_down / on_up) and polls release_reusable() from
// a periodic timer. It never talks to the routing process itself, so the
// routing layer sees only a slow, stable adjacency where the physical layer
// had a fast, flapping one. Loop-freedom is unaffected: to MPDA a damped
// link is simply a link that stays down longer.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/topology.h"
#include "obs/trace.h"
#include "util/time.h"

namespace mdr::proto {

class FlapDamper {
 public:
  struct Options {
    bool enabled = false;
    double penalty = 1000.0;            ///< added per down transition
    double suppress_threshold = 2000.0; ///< penalty at/above which to suppress
    double reuse_threshold = 750.0;     ///< decay below this releases
    Duration half_life = 15.0;          ///< exponential-decay half life (s)
    double max_penalty = 12000.0;       ///< accumulation ceiling
  };

  explicit FlapDamper(Options options);

  /// Records a down transition at `now`; returns true when the neighbor is
  /// suppressed after the penalty is applied (the withdrawal this event
  /// triggers is then the *last* one until release).
  bool on_down(graph::NodeId k, Time now);

  /// Records an up transition; returns true when the up may be announced to
  /// routing, false when the neighbor is suppressed (the host holds the
  /// adjacency back and waits for release_reusable()).
  bool on_up(graph::NodeId k, Time now);

  /// Decays every penalty to `now` and returns the neighbors that just left
  /// suppression (penalty fell below reuse_threshold). The host re-announces
  /// those that are still adjacent. Fully-decayed idle entries are pruned.
  std::vector<graph::NodeId> release_reusable(Time now);

  bool suppressed(graph::NodeId k) const;
  double penalty(graph::NodeId k, Time now) const;

  /// Crash semantics: damping state dies with the router process. The
  /// measurement counters survive (run statistics stay conserved).
  void reset();

  /// Times a neighbor entered suppression (each is one withdrawal that
  /// replaced a whole train of re-advertisements).
  std::uint64_t damped_withdrawals() const { return damped_withdrawals_; }
  /// Up transitions swallowed while suppressed.
  std::uint64_t suppressed_ups() const { return suppressed_ups_; }

  const Options& options() const { return options_; }

  /// Attaches a flight-recorder probe (suppress/release events). Off by
  /// default; one branch per transition when off.
  void set_probe(const obs::Probe& probe) { probe_ = probe; }

  void save(ckpt::Writer& w) const {
    w.u64(states_.size());
    for (const auto& [k, s] : states_) {
      w.i64(k);
      w.f64(s.penalty);
      w.f64(s.stamp);
      w.b(s.suppressed);
    }
    w.u64(damped_withdrawals_);
    w.u64(suppressed_ups_);
  }
  void load(ckpt::Reader& r) {
    states_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = static_cast<graph::NodeId>(r.i64());
      State& s = states_[k];
      s.penalty = r.f64();
      s.stamp = r.f64();
      s.suppressed = r.b();
    }
    damped_withdrawals_ = r.u64();
    suppressed_ups_ = r.u64();
  }

 private:
  struct State {
    double penalty = 0;
    Time stamp = 0;  ///< instant `penalty` was last materialized
    bool suppressed = false;
  };

  double decayed(const State& s, Time now) const;

  Options options_;
  std::map<graph::NodeId, State> states_;
  std::uint64_t damped_withdrawals_ = 0;
  std::uint64_t suppressed_ups_ = 0;
  obs::Probe probe_;
};

}  // namespace mdr::proto
