#include "proto/hello.h"

#include <algorithm>
#include <cassert>

#include "proto/checksum.h"

namespace mdr::proto {

std::vector<std::uint8_t> encode_hello(const HelloMessage& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(13 + 4 * msg.heard.size());
  const auto put_u32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put_u32(static_cast<std::uint32_t>(msg.sender));
  put_u32(msg.generation);
  assert(msg.heard.size() <= 255);
  out.push_back(static_cast<std::uint8_t>(msg.heard.size()));
  for (const graph::NodeId id : msg.heard) {
    put_u32(static_cast<std::uint32_t>(id));
  }
  put_u32(checksum32(out));
  return out;
}

std::optional<HelloMessage> decode_hello(std::span<const std::uint8_t> wire) {
  // Validate the total length before reading anything: the count byte fully
  // determines the size, so truncated or length-lying buffers are rejected
  // up front and no loop below can over-read. The checksum trailer catches
  // what structure can't: in-range bit flips (e.g. inside the generation).
  if (wire.size() < 13) return std::nullopt;
  const auto body = wire.first(wire.size() - 4);
  const auto get_u32 = [&wire](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(wire[at + i]) << (8 * i);
    }
    return v;
  };
  if (get_u32(body.size()) != checksum32(body)) return std::nullopt;
  HelloMessage msg;
  msg.sender = static_cast<graph::NodeId>(get_u32(0));
  if (msg.sender < 0) return std::nullopt;  // corrupted id
  msg.generation = get_u32(4);
  const std::size_t count = wire[8];
  if (body.size() != 9 + 4 * count) return std::nullopt;
  msg.heard.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto id = static_cast<graph::NodeId>(get_u32(9 + 4 * i));
    if (id < 0) return std::nullopt;
    msg.heard.push_back(id);
  }
  return msg;
}

HelloProtocol::HelloProtocol(graph::NodeId self, Options options,
                             Callbacks callbacks)
    : self_(self), options_(options), callbacks_(std::move(callbacks)) {
  assert(options_.interval > 0);
  assert(options_.dead_interval > options_.interval);
}

void HelloProtocol::restart(std::uint32_t generation) {
  // No adjacency_down callbacks: the host has already discarded its routing
  // state wholesale; peers learn of the reboot from the generation bump.
  generation_ = generation;
  peers_.clear();
}

void HelloProtocol::physical_up(graph::NodeId k) {
  peers_.emplace(k, Peer{});
}

void HelloProtocol::physical_down(graph::NodeId k) {
  const auto it = peers_.find(k);
  if (it == peers_.end()) return;
  const bool was_adjacent = it->second.two_way;
  peers_.erase(it);
  if (was_adjacent && callbacks_.adjacency_down) callbacks_.adjacency_down(k);
}

void HelloProtocol::on_hello(const HelloMessage& msg, Time now) {
  const auto it = peers_.find(msg.sender);
  if (it == peers_.end()) return;  // no physical link: stray datagram
  Peer& peer = it->second;
  if (peer.generation_known && peer.generation != msg.generation) {
    // The peer rebooted and lost all state. Tear the adjacency down (so the
    // routing layer flushes its per-neighbor state) and treat this hello as
    // the first from a brand-new peer; the 2-way check below re-establishes.
    drop(msg.sender, peer);
  }
  peer.generation = msg.generation;
  peer.generation_known = true;
  peer.heard = true;
  peer.last_heard = now;
  const bool sees_us =
      std::find(msg.heard.begin(), msg.heard.end(), self_) != msg.heard.end();
  if (sees_us && !peer.two_way) {
    peer.two_way = true;
    if (callbacks_.adjacency_up) callbacks_.adjacency_up(msg.sender);
  }
  // A peer that stops listing us is treated as still adjacent until its
  // hellos stop entirely (OSPF handles the 2-way downgrade similarly via
  // the dead interval; an explicit teardown would arrive as physical_down).
}

void HelloProtocol::drop(graph::NodeId k, Peer& peer) {
  const bool was_adjacent = peer.two_way;
  peer.heard = false;
  peer.two_way = false;
  if (was_adjacent && callbacks_.adjacency_down) callbacks_.adjacency_down(k);
}

void HelloProtocol::tick(Time now) {
  for (auto& [k, peer] : peers_) {
    if (peer.heard && now - peer.last_heard > options_.dead_interval) {
      drop(k, peer);
    }
  }
  HelloMessage msg;
  msg.sender = self_;
  msg.generation = generation_;
  msg.heard = heard_neighbors();
  for (const auto& [k, peer] : peers_) {
    if (callbacks_.send_hello) callbacks_.send_hello(k, msg);
  }
}

bool HelloProtocol::adjacent(graph::NodeId k) const {
  const auto it = peers_.find(k);
  return it != peers_.end() && it->second.two_way;
}

std::vector<graph::NodeId> HelloProtocol::heard_neighbors() const {
  std::vector<graph::NodeId> out;
  for (const auto& [k, peer] : peers_) {
    if (peer.heard) out.push_back(k);
  }
  return out;
}

}  // namespace mdr::proto
