#include "proto/hello.h"

#include <algorithm>
#include <cassert>

namespace mdr::proto {

std::vector<std::uint8_t> encode_hello(const HelloMessage& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(5 + 4 * msg.heard.size());
  const auto put_u32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put_u32(static_cast<std::uint32_t>(msg.sender));
  assert(msg.heard.size() <= 255);
  out.push_back(static_cast<std::uint8_t>(msg.heard.size()));
  for (const graph::NodeId id : msg.heard) {
    put_u32(static_cast<std::uint32_t>(id));
  }
  return out;
}

std::optional<HelloMessage> decode_hello(std::span<const std::uint8_t> wire) {
  if (wire.size() < 5) return std::nullopt;
  const auto get_u32 = [&wire](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(wire[at + i]) << (8 * i);
    }
    return v;
  };
  HelloMessage msg;
  msg.sender = static_cast<graph::NodeId>(get_u32(0));
  const std::size_t count = wire[4];
  if (wire.size() != 5 + 4 * count) return std::nullopt;
  msg.heard.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    msg.heard.push_back(static_cast<graph::NodeId>(get_u32(5 + 4 * i)));
  }
  return msg;
}

HelloProtocol::HelloProtocol(graph::NodeId self, Options options,
                             Callbacks callbacks)
    : self_(self), options_(options), callbacks_(std::move(callbacks)) {
  assert(options_.interval > 0);
  assert(options_.dead_interval > options_.interval);
}

void HelloProtocol::physical_up(graph::NodeId k) {
  peers_.emplace(k, Peer{});
}

void HelloProtocol::physical_down(graph::NodeId k) {
  const auto it = peers_.find(k);
  if (it == peers_.end()) return;
  const bool was_adjacent = it->second.two_way;
  peers_.erase(it);
  if (was_adjacent && callbacks_.adjacency_down) callbacks_.adjacency_down(k);
}

void HelloProtocol::on_hello(const HelloMessage& msg, Time now) {
  const auto it = peers_.find(msg.sender);
  if (it == peers_.end()) return;  // no physical link: stray datagram
  Peer& peer = it->second;
  peer.heard = true;
  peer.last_heard = now;
  const bool sees_us =
      std::find(msg.heard.begin(), msg.heard.end(), self_) != msg.heard.end();
  if (sees_us && !peer.two_way) {
    peer.two_way = true;
    if (callbacks_.adjacency_up) callbacks_.adjacency_up(msg.sender);
  }
  // A peer that stops listing us is treated as still adjacent until its
  // hellos stop entirely (OSPF handles the 2-way downgrade similarly via
  // the dead interval; an explicit teardown would arrive as physical_down).
}

void HelloProtocol::drop(graph::NodeId k, Peer& peer) {
  const bool was_adjacent = peer.two_way;
  peer.heard = false;
  peer.two_way = false;
  if (was_adjacent && callbacks_.adjacency_down) callbacks_.adjacency_down(k);
}

void HelloProtocol::tick(Time now) {
  for (auto& [k, peer] : peers_) {
    if (peer.heard && now - peer.last_heard > options_.dead_interval) {
      drop(k, peer);
    }
  }
  HelloMessage msg;
  msg.sender = self_;
  msg.heard = heard_neighbors();
  for (const auto& [k, peer] : peers_) {
    if (callbacks_.send_hello) callbacks_.send_hello(k, msg);
  }
}

bool HelloProtocol::adjacent(graph::NodeId k) const {
  const auto it = peers_.find(k);
  return it != peers_.end() && it->second.two_way;
}

std::vector<graph::NodeId> HelloProtocol::heard_neighbors() const {
  std::vector<graph::NodeId> out;
  for (const auto& [k, peer] : peers_) {
    if (peer.heard) out.push_back(k);
  }
  return out;
}

}  // namespace mdr::proto
