// PDA — the Partial-topology Dissemination Algorithm (paper Figs. 1-3).
//
// RouterTables holds the per-router protocol state (main topology table T,
// per-neighbor topology tables T_k, adjacent link costs l_k, distance
// tables) and implements the NTU (Neighbor Topology table Update) and MTU
// (Main topology Table Update) procedures. PdaProcess is the event loop of
// Fig. 1: every event runs NTU then MTU and floods the topology diff to all
// neighbors.
//
// PDA converges to correct shortest paths (paper Theorem 2) but offers no
// instantaneous loop-freedom; MPDA (core/mpda.h) layers the LFI machinery
// on top of the same tables.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/topology.h"
#include "proto/lsu.h"
#include "proto/tables.h"

namespace mdr::proto {

/// Outbound message interface; the simulator (or a test harness) injects an
/// implementation. `neighbor` is always a current neighbor of the sender.
class LsuSink {
 public:
  virtual ~LsuSink() = default;
  virtual void send(graph::NodeId neighbor, const LsuMessage& msg) = 0;
};

/// Per-router protocol tables plus the NTU/MTU procedures.
///
/// Node ids live in a dense universe [0, num_nodes); a production router
/// would map addresses to dense indices at the edge.
class RouterTables {
 public:
  RouterTables(graph::NodeId self, std::size_t num_nodes);

  graph::NodeId self() const { return self_; }
  std::size_t num_nodes() const { return num_nodes_; }

  // --- NTU pieces (Fig. 2) -------------------------------------------------

  /// Fig. 2 step 1: fold an LSU from neighbor k into T_k and refresh the
  /// distances D_jk (from k to every j in T_k).
  void apply_lsu(graph::NodeId k, std::span<const LsuEntry> entries);

  /// Fig. 2 step 2: adjacent link (self, k) came up at the given cost.
  void link_up(graph::NodeId k, graph::Cost cost);

  /// Fig. 2 step 3: adjacent link cost change.
  void link_cost_change(graph::NodeId k, graph::Cost cost);

  /// Fig. 2 step 4: adjacent link failed; clears T_k.
  void link_down(graph::NodeId k);

  // --- MTU (Fig. 3) --------------------------------------------------------

  /// Rebuilds the main topology table T from the neighbor tables and the
  /// adjacent links, prunes it to this router's shortest-path tree, updates
  /// D_j, and returns the LSU entries describing how T changed.
  std::vector<LsuEntry> mtu();

  // --- accessors -----------------------------------------------------------

  /// Current neighbors (adjacent links that are up), ascending ids.
  const std::set<graph::NodeId>& neighbors() const { return neighbors_; }
  bool is_neighbor(graph::NodeId k) const { return neighbors_.contains(k); }

  /// Adjacent link cost l_k; kInfCost if k is not a neighbor.
  graph::Cost link_cost(graph::NodeId k) const;

  /// D_j: this router's distance to j per the main topology table.
  graph::Cost distance(graph::NodeId j) const { return dist_[j]; }

  /// D_jk: neighbor k's distance to j per the (time-delayed) topology k
  /// reported; kInfCost if unknown.
  graph::Cost distance_via(graph::NodeId j, graph::NodeId k) const;

  const LinkStateTable& main_topology() const { return main_; }
  const LinkStateTable& neighbor_topology(graph::NodeId k) const;

  void save(ckpt::Writer& w) const {
    main_.save(w);
    w.u64(nbr_topo_.size());
    for (const auto& [k, table] : nbr_topo_) {
      w.i64(k);
      table.save(w);
    }
    w.u64(nbr_dist_.size());
    for (const auto& [k, dists] : nbr_dist_) {
      w.i64(k);
      w.u64(dists.size());
      for (graph::Cost c : dists) w.f64(c);
    }
    w.u64(link_costs_.size());
    for (const auto& [k, c] : link_costs_) {
      w.i64(k);
      w.f64(c);
    }
    w.u64(neighbors_.size());
    for (graph::NodeId k : neighbors_) w.i64(k);
    w.u64(dist_.size());
    for (graph::Cost c : dist_) w.f64(c);
  }
  void load(ckpt::Reader& r) {
    main_.load(r);
    nbr_topo_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = static_cast<graph::NodeId>(r.i64());
      nbr_topo_[k].load(r);
    }
    nbr_dist_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = static_cast<graph::NodeId>(r.i64());
      auto& dists = nbr_dist_[k];
      dists.resize(r.u64());
      for (graph::Cost& c : dists) c = r.f64();
    }
    link_costs_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = static_cast<graph::NodeId>(r.i64());
      link_costs_[k] = r.f64();
    }
    neighbors_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      neighbors_.insert(static_cast<graph::NodeId>(r.i64()));
    }
    dist_.resize(r.u64());
    for (graph::Cost& c : dist_) c = r.f64();
  }

 private:
  graph::NodeId self_;
  std::size_t num_nodes_;
  LinkStateTable main_;                              // T
  std::map<graph::NodeId, LinkStateTable> nbr_topo_;  // T_k
  std::map<graph::NodeId, std::vector<graph::Cost>> nbr_dist_;  // D_jk
  std::map<graph::NodeId, graph::Cost> link_costs_;  // l_k
  std::set<graph::NodeId> neighbors_;
  std::vector<graph::Cost> dist_;  // D_j
};

/// Events a protocol process consumes; shared by PDA and MPDA.
class RoutingProcess {
 public:
  virtual ~RoutingProcess() = default;
  virtual void on_link_up(graph::NodeId k, graph::Cost cost) = 0;
  virtual void on_link_down(graph::NodeId k) = 0;
  virtual void on_link_cost_change(graph::NodeId k, graph::Cost cost) = 0;
  virtual void on_lsu(const LsuMessage& msg) = 0;
};

/// The PDA event loop (Fig. 1).
class PdaProcess final : public RoutingProcess {
 public:
  PdaProcess(graph::NodeId self, std::size_t num_nodes, LsuSink& sink);

  void on_link_up(graph::NodeId k, graph::Cost cost) override;
  void on_link_down(graph::NodeId k) override;
  void on_link_cost_change(graph::NodeId k, graph::Cost cost) override;
  void on_lsu(const LsuMessage& msg) override;

  const RouterTables& tables() const { return tables_; }

  /// Messages sent so far (diagnostics / overhead accounting).
  std::size_t messages_sent() const { return messages_sent_; }

 private:
  // Fig. 1 steps 2-4: MTU, then flood the diff.
  void mtu_and_flood();

  RouterTables tables_;
  LsuSink* sink_;
  std::size_t messages_sent_ = 0;
};

}  // namespace mdr::proto
