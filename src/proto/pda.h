// PDA — the Partial-topology Dissemination Algorithm (paper Figs. 1-3).
//
// RouterTables holds the per-router protocol state (main topology table T,
// per-neighbor topology tables T_k, adjacent link costs l_k, distance
// tables) and implements the NTU (Neighbor Topology table Update) and MTU
// (Main topology Table Update) procedures. PdaProcess is the event loop of
// Fig. 1: every event runs NTU then MTU and floods the topology diff to all
// neighbors.
//
// Table maintenance is INCREMENTAL but output-identical to the from-scratch
// procedures of the paper:
//
//   * D_jk is the distance vector of a dynamically maintained SPT of T_k
//     (graph::DynamicSpt), repaired per LSU instead of recomputed;
//   * the Fig. 3 merge keeps a persistent `merged_` topology plus a
//     per-destination preferred-neighbor cache, and re-merges only
//     destinations whose inputs changed (per-destination dirty sets:
//     kDirtyMerge when some D_jk moved, kDirtyRow when a neighbor's row for
//     the destination changed; adjacency events dirty everything);
//   * the pruned tree T, D_j and the flooded diff are derived from the own
//     SPT's repair delta, so a clean MTU is O(1) and a dirty one is
//     proportional to what actually changed.
//
// The equivalence rests on DynamicSpt's canonicality contract (lowest-id
// tight predecessor, exact-double distances — see graph/dynamic_spt.h).
// Configuring with -DMDR_AUDIT_TABLES=ON (or set_audit_enabled(true))
// cross-checks every NTU/MTU against the from-scratch computation and
// throws std::logic_error on any divergence.
//
// PDA converges to correct shortest paths (paper Theorem 2) but offers no
// instantaneous loop-freedom; MPDA (core/mpda.h) layers the LFI machinery
// on top of the same tables.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/dynamic_spt.h"
#include "graph/topology.h"
#include "proto/lsu.h"
#include "proto/tables.h"

namespace mdr::proto {

/// Outbound message interface; the simulator (or a test harness) injects an
/// implementation. `neighbor` is always a current neighbor of the sender.
class LsuSink {
 public:
  virtual ~LsuSink() = default;
  virtual void send(graph::NodeId neighbor, const LsuMessage& msg) = 0;
};

/// Per-router protocol tables plus the NTU/MTU procedures.
///
/// Node ids live in a dense universe [0, num_nodes); a production router
/// would map addresses to dense indices at the edge.
class RouterTables {
 public:
  RouterTables(graph::NodeId self, std::size_t num_nodes);

  graph::NodeId self() const { return self_; }
  std::size_t num_nodes() const { return num_nodes_; }

  // --- NTU pieces (Fig. 2) -------------------------------------------------

  /// Fig. 2 step 1: fold an LSU from neighbor k into T_k and repair the
  /// distances D_jk (from k to every j in T_k). Returns the destinations j
  /// whose D_jk changed, ascending (consumers can restrict successor-set
  /// rescans to them).
  std::vector<graph::NodeId> apply_lsu(graph::NodeId k,
                                       std::span<const LsuEntry> entries);

  /// Fig. 2 step 2: adjacent link (self, k) came up at the given cost.
  void link_up(graph::NodeId k, graph::Cost cost);

  /// Fig. 2 step 3: adjacent link cost change.
  void link_cost_change(graph::NodeId k, graph::Cost cost);

  /// Fig. 2 step 4: adjacent link failed; clears T_k.
  void link_down(graph::NodeId k);

  // --- MTU (Fig. 3) --------------------------------------------------------

  /// Re-merges the dirty destinations into the main topology table T,
  /// prunes to this router's shortest-path tree, updates D_j, and returns
  /// the LSU entries describing how T changed. With no pending dirt this is
  /// a no-op returning {}.
  std::vector<LsuEntry> mtu();

  /// Destinations whose D_j changed during the last mtu() call, ascending
  /// (feasible-distance maintenance needs exactly these).
  const std::vector<graph::NodeId>& last_mtu_dist_changed() const {
    return last_mtu_dist_changed_;
  }

  // --- accessors -----------------------------------------------------------

  /// Current neighbors (adjacent links that are up), ascending ids.
  const std::set<graph::NodeId>& neighbors() const { return neighbors_; }
  bool is_neighbor(graph::NodeId k) const { return neighbors_.contains(k); }

  /// Adjacent link cost l_k; kInfCost if k is not a neighbor.
  graph::Cost link_cost(graph::NodeId k) const;

  /// D_j: this router's distance to j per the main topology table.
  graph::Cost distance(graph::NodeId j) const { return dist_[j]; }

  /// D_jk: neighbor k's distance to j per the (time-delayed) topology k
  /// reported; kInfCost if unknown.
  graph::Cost distance_via(graph::NodeId j, graph::NodeId k) const;

  /// The whole D_·k vector (indexed by destination), or nullptr if k is
  /// unknown. Lets per-destination scans hoist the map lookup.
  const std::vector<graph::Cost>* distances_via(graph::NodeId k) const;

  const LinkStateTable& main_topology() const { return main_; }
  const LinkStateTable& neighbor_topology(graph::NodeId k) const;

  /// Globally toggles the incremental-vs-from-scratch cross-check (defaults
  /// to on when built with -DMDR_AUDIT_TABLES=ON). A divergence throws
  /// std::logic_error.
  static void set_audit_enabled(bool on) { audit_enabled_ = on; }
  static bool audit_enabled() { return audit_enabled_; }

  void save(ckpt::Writer& w) const;
  void load(ckpt::Reader& r);

 private:
  // Dirty bits per destination: the preferred neighbor may have moved
  // (some D_jk changed) / one specific neighbor's row for the destination
  // changed (row_dirty_by_ says whose — the copy is skipped unless that
  // neighbor is the preferred one) / rows changed in a way no single
  // neighbor describes (adjacency churn, or two different neighbors'
  // rows moved since the last MTU), so any preferred match re-copies.
  static constexpr std::uint8_t kDirtyMerge = 1;
  static constexpr std::uint8_t kDirtyRow = 2;
  static constexpr std::uint8_t kDirtyRowAll = 4;

  void mark_dirty(graph::NodeId j, std::uint8_t bits);
  void mark_row_dirty(graph::NodeId j, graph::NodeId k);
  void audit() const;

  graph::NodeId self_;
  std::size_t num_nodes_;
  LinkStateTable main_;    // T (pruned own SPT)
  LinkStateTable merged_;  // Fig. 3 steps 2-5 output, maintained in place
  std::map<graph::NodeId, LinkStateTable> nbr_topo_;    // T_k
  std::map<graph::NodeId, graph::DynamicSpt> nbr_spt_;  // SPT(T_k, k); D_jk
  std::map<graph::NodeId, graph::Cost> link_costs_;     // l_k
  std::set<graph::NodeId> neighbors_;
  std::vector<graph::Cost> dist_;  // D_j
  graph::DynamicSpt own_spt_;      // SPT(merged_, self)
  /// Preferred neighbor per destination as of the last mtu() (the Fig. 3
  /// argmin); lets a clean destination skip its row rebuild entirely.
  std::vector<graph::NodeId> preferred_;
  std::vector<std::uint8_t> dirty_;
  /// With kDirtyRow set: the one neighbor whose row for this destination
  /// changed since the last MTU (meaningless otherwise).
  std::vector<graph::NodeId> row_dirty_by_;
  std::vector<graph::NodeId> dirty_list_;
  /// Adjacency changed (neighbor set or l_k): every destination's argmin
  /// is suspect. Starts true so the first mtu() merges everything.
  bool all_dirty_ = true;
  std::vector<graph::NodeId> last_mtu_dist_changed_;

  static bool audit_enabled_;
};

/// Events a protocol process consumes; shared by PDA and MPDA.
class RoutingProcess {
 public:
  virtual ~RoutingProcess() = default;
  virtual void on_link_up(graph::NodeId k, graph::Cost cost) = 0;
  virtual void on_link_down(graph::NodeId k) = 0;
  virtual void on_link_cost_change(graph::NodeId k, graph::Cost cost) = 0;
  virtual void on_lsu(const LsuMessage& msg) = 0;
};

/// The PDA event loop (Fig. 1).
class PdaProcess final : public RoutingProcess {
 public:
  PdaProcess(graph::NodeId self, std::size_t num_nodes, LsuSink& sink);

  void on_link_up(graph::NodeId k, graph::Cost cost) override;
  void on_link_down(graph::NodeId k) override;
  void on_link_cost_change(graph::NodeId k, graph::Cost cost) override;
  void on_lsu(const LsuMessage& msg) override;

  const RouterTables& tables() const { return tables_; }

  /// Messages sent so far (diagnostics / overhead accounting).
  std::size_t messages_sent() const { return messages_sent_; }

 private:
  // Fig. 1 steps 2-4: MTU, then flood the diff.
  void mtu_and_flood();

  RouterTables tables_;
  LsuSink* sink_;
  std::size_t messages_sent_ = 0;
};

}  // namespace mdr::proto
