// Hello protocol: symmetric adjacency establishment and failure detection.
//
// MPDA (and the paper's model) assume a neighbor protocol beneath routing:
// adjacency is mutual before LSUs flow, and link failures are detected
// "within a finite time". HelloProtocol supplies both, OSPF-style:
//
//   * each router periodically multicasts a Hello listing the neighbors it
//     currently hears;
//   * an adjacency comes up only when communication is known bidirectional
//     (we hear k AND k's Hello lists us — the 2-way check), at which point
//     the routing process may exchange LSUs with k;
//   * an adjacency (or a half-open peer) expires after dead_interval
//     without Hellos — this catches *silent* failures the physical layer
//     never signals;
//   * every Hello carries the sender's boot *generation*. A peer whose
//     generation changes has rebooted and lost all protocol state: the
//     adjacency is torn down immediately (flushing the routing layer's
//     per-neighbor state — sequence numbers, retransmission buffers) and
//     re-established through a fresh 2-way check, which triggers a full
//     topology resync. This catches reboots *faster than the dead
//     interval*, which silence-based detection alone would miss — the peer
//     would otherwise keep discarding the reborn router's "old" sequence
//     numbers forever.
//
// The protocol is transport-agnostic: the host wires the callbacks to its
// link layer and calls tick() every `interval` seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "ckpt/ckpt.h"
#include "graph/topology.h"
#include "util/time.h"

namespace mdr::proto {

struct HelloMessage {
  graph::NodeId sender = graph::kInvalidNode;
  std::uint32_t generation = 0;      ///< sender's boot incarnation
  std::vector<graph::NodeId> heard;  ///< neighbors the sender currently hears

  /// sender u32, generation u32, count u8, ids, checksum u32.
  std::size_t wire_size_bits() const { return 8 * (13 + 4 * heard.size()); }
  friend bool operator==(const HelloMessage&, const HelloMessage&) = default;
};

std::vector<std::uint8_t> encode_hello(const HelloMessage& msg);
std::optional<HelloMessage> decode_hello(std::span<const std::uint8_t> wire);

class HelloProtocol {
 public:
  struct Options {
    Duration interval = 1.0;       ///< hello transmission period
    Duration dead_interval = 3.5;  ///< silence before declaring a peer dead
  };

  struct Callbacks {
    /// 2-way adjacency established: safe to start routing with k.
    std::function<void(graph::NodeId k)> adjacency_up;
    /// Adjacency lost (dead interval or physical down).
    std::function<void(graph::NodeId k)> adjacency_down;
    /// Transmit a hello toward physical neighbor k.
    std::function<void(graph::NodeId k, const HelloMessage&)> send_hello;
  };

  HelloProtocol(graph::NodeId self, Options options, Callbacks callbacks);

  /// This router rebooted with all state lost: forget every peer and start
  /// advertising the new generation. The host must re-announce its physical
  /// links (physical_up) afterwards; peers detect the generation change and
  /// tear down / re-establish their side.
  void restart(std::uint32_t generation);

  /// The physical link toward k is up; begin soliciting it.
  void physical_up(graph::NodeId k);

  /// Signaled physical failure: the adjacency drops immediately.
  void physical_down(graph::NodeId k);

  /// Hello received (host guarantees it arrived over a live link).
  void on_hello(const HelloMessage& msg, Time now);

  /// Periodic driver: expires dead peers, then transmits hellos. Call every
  /// `options.interval` seconds (jitter is fine).
  void tick(Time now);

  bool adjacent(graph::NodeId k) const;
  std::vector<graph::NodeId> heard_neighbors() const;
  const Options& options() const { return options_; }
  std::uint32_t generation() const { return generation_; }

  void save(ckpt::Writer& w) const {
    w.u32(generation_);
    w.u64(peers_.size());
    for (const auto& [k, peer] : peers_) {
      w.i64(k);
      w.b(peer.heard);
      w.b(peer.two_way);
      w.f64(peer.last_heard);
      w.u32(peer.generation);
      w.b(peer.generation_known);
    }
  }
  void load(ckpt::Reader& r) {
    generation_ = r.u32();
    peers_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = static_cast<graph::NodeId>(r.i64());
      Peer& peer = peers_[k];
      peer.heard = r.b();
      peer.two_way = r.b();
      peer.last_heard = r.f64();
      peer.generation = r.u32();
      peer.generation_known = r.b();
    }
  }

 private:
  struct Peer {
    bool heard = false;    ///< 1-way: their hellos reach us
    bool two_way = false;  ///< adjacency: they also list us
    Time last_heard = 0;
    std::uint32_t generation = 0;  ///< last seen boot incarnation
    bool generation_known = false;
  };

  void drop(graph::NodeId k, Peer& peer);

  graph::NodeId self_;
  Options options_;
  Callbacks callbacks_;
  std::uint32_t generation_ = 0;
  std::map<graph::NodeId, Peer> peers_;
};

}  // namespace mdr::proto
