#include "proto/tables.h"

#include <cassert>

namespace mdr::proto {

void LinkStateTable::set(graph::NodeId head, graph::NodeId tail,
                         graph::Cost cost) {
  assert(head != tail);
  assert(cost >= 0);
  links_[Key{head, tail}] = cost;
}

void LinkStateTable::remove(graph::NodeId head, graph::NodeId tail) {
  links_.erase(Key{head, tail});
}

void LinkStateTable::apply(const LsuEntry& entry) {
  if (entry.op == LsuOp::kDelete) {
    remove(entry.head, entry.tail);
  } else {
    set(entry.head, entry.tail, entry.cost);
  }
}

std::optional<graph::Cost> LinkStateTable::cost(graph::NodeId head,
                                                graph::NodeId tail) const {
  const auto it = links_.find(Key{head, tail});
  if (it == links_.end()) return std::nullopt;
  return it->second;
}

std::vector<graph::CostedEdge> LinkStateTable::edges() const {
  std::vector<graph::CostedEdge> out;
  out.reserve(links_.size());
  for (const auto& [key, cost] : links_) {
    out.push_back(graph::CostedEdge{key.first, key.second, cost});
  }
  return out;
}

std::vector<std::pair<graph::NodeId, graph::Cost>> LinkStateTable::links_from(
    graph::NodeId head) const {
  std::vector<std::pair<graph::NodeId, graph::Cost>> out;
  for (auto it = links_.lower_bound(Key{head, graph::kInvalidNode});
       it != links_.end() && it->first.first == head; ++it) {
    out.emplace_back(it->first.second, it->second);
  }
  return out;
}

std::vector<LsuEntry> LinkStateTable::as_entries() const {
  std::vector<LsuEntry> out;
  out.reserve(links_.size());
  for (const auto& [key, cost] : links_) {
    out.push_back(LsuEntry{key.first, key.second, cost, LsuOp::kAddOrChange});
  }
  return out;
}

std::vector<LsuEntry> LinkStateTable::diff(const LinkStateTable& before,
                                           const LinkStateTable& after) {
  std::vector<LsuEntry> out;
  for (const auto& [key, cost] : after.links_) {
    const auto old = before.cost(key.first, key.second);
    if (!old.has_value() || *old != cost) {
      out.push_back(LsuEntry{key.first, key.second, cost, LsuOp::kAddOrChange});
    }
  }
  for (const auto& [key, cost] : before.links_) {
    if (!after.cost(key.first, key.second).has_value()) {
      out.push_back(
          LsuEntry{key.first, key.second, graph::kInfCost, LsuOp::kDelete});
    }
  }
  return out;
}

}  // namespace mdr::proto
