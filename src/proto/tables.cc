#include "proto/tables.h"

#include <cassert>

namespace mdr::proto {

bool LinkStateTable::set(graph::NodeId head, graph::NodeId tail,
                         graph::Cost cost) {
  assert(head != tail);
  assert(cost >= 0);
  const auto [it, inserted] = links_.try_emplace(Key{head, tail}, cost);
  if (!inserted) {
    if (it->second == cost) return false;
    it->second = cost;
  }
  return true;
}

bool LinkStateTable::remove(graph::NodeId head, graph::NodeId tail) {
  return links_.erase(Key{head, tail}) > 0;
}

bool LinkStateTable::apply(const LsuEntry& entry) {
  if (entry.op == LsuOp::kDelete) {
    return remove(entry.head, entry.tail);
  }
  return set(entry.head, entry.tail, entry.cost);
}

std::optional<graph::Cost> LinkStateTable::cost(graph::NodeId head,
                                                graph::NodeId tail) const {
  const auto it = links_.find(Key{head, tail});
  if (it == links_.end()) return std::nullopt;
  return it->second;
}

std::vector<graph::CostedEdge> LinkStateTable::edges() const {
  std::vector<graph::CostedEdge> out;
  out.reserve(links_.size());
  for (const auto& [key, cost] : links_) {
    out.push_back(graph::CostedEdge{key.first, key.second, cost});
  }
  return out;
}

std::vector<std::pair<graph::NodeId, graph::Cost>> LinkStateTable::links_from(
    graph::NodeId head) const {
  std::vector<std::pair<graph::NodeId, graph::Cost>> out;
  for (auto it = links_.lower_bound(Key{head, graph::kInvalidNode});
       it != links_.end() && it->first.first == head; ++it) {
    out.emplace_back(it->first.second, it->second);
  }
  return out;
}

std::vector<LsuEntry> LinkStateTable::as_entries() const {
  std::vector<LsuEntry> out;
  out.reserve(links_.size());
  for (const auto& [key, cost] : links_) {
    out.push_back(LsuEntry{key.first, key.second, cost, LsuOp::kAddOrChange});
  }
  return out;
}

std::vector<LsuEntry> LinkStateTable::diff(const LinkStateTable& before,
                                           const LinkStateTable& after) {
  // One linear walk over both sorted maps instead of a lookup per entry.
  // Order contract (callers flood these bytes): every kAddOrChange in
  // `after` key order, then every kDelete in `before` key order.
  std::vector<LsuEntry> out;
  std::vector<LsuEntry> deletes;
  auto b = before.links_.begin();
  const auto b_end = before.links_.end();
  auto a = after.links_.begin();
  const auto a_end = after.links_.end();
  while (a != a_end || b != b_end) {
    if (b == b_end || (a != a_end && a->first < b->first)) {
      out.push_back(
          LsuEntry{a->first.first, a->first.second, a->second,
                   LsuOp::kAddOrChange});
      ++a;
    } else if (a == a_end || b->first < a->first) {
      deletes.push_back(LsuEntry{b->first.first, b->first.second,
                                 graph::kInfCost, LsuOp::kDelete});
      ++b;
    } else {
      if (a->second != b->second) {
        out.push_back(
            LsuEntry{a->first.first, a->first.second, a->second,
                     LsuOp::kAddOrChange});
      }
      ++a;
      ++b;
    }
  }
  out.insert(out.end(), deletes.begin(), deletes.end());
  return out;
}

}  // namespace mdr::proto
