#include "proto/damping.h"

#include <algorithm>
#include <cmath>

namespace mdr::proto {

FlapDamper::FlapDamper(Options options) : options_(options) {}

double FlapDamper::decayed(const State& s, Time now) const {
  if (s.penalty <= 0) return 0;
  const Duration dt = now - s.stamp;
  if (dt <= 0) return s.penalty;
  return s.penalty * std::exp2(-dt / options_.half_life);
}

bool FlapDamper::on_down(graph::NodeId k, Time now) {
  State& s = states_[k];
  s.penalty = std::min(decayed(s, now) + options_.penalty, options_.max_penalty);
  s.stamp = now;
  if (!s.suppressed && s.penalty >= options_.suppress_threshold) {
    s.suppressed = true;
    ++damped_withdrawals_;
    probe_.emit(obs::EventType::kDampSuppress, k, s.penalty);
  }
  return s.suppressed;
}

bool FlapDamper::on_up(graph::NodeId k, Time now) {
  auto it = states_.find(k);
  if (it == states_.end()) return true;
  State& s = it->second;
  s.penalty = decayed(s, now);
  s.stamp = now;
  if (s.suppressed) {
    ++suppressed_ups_;
    return false;
  }
  return true;
}

std::vector<graph::NodeId> FlapDamper::release_reusable(Time now) {
  std::vector<graph::NodeId> released;
  for (auto it = states_.begin(); it != states_.end();) {
    State& s = it->second;
    s.penalty = decayed(s, now);
    s.stamp = now;
    if (s.suppressed && s.penalty < options_.reuse_threshold) {
      s.suppressed = false;
      released.push_back(it->first);
      probe_.emit(obs::EventType::kDampRelease, it->first, s.penalty);
    }
    // Prune idle entries once the penalty has decayed to noise; a
    // long-stable neighbor should cost no memory.
    if (!s.suppressed && s.penalty < 1.0) {
      it = states_.erase(it);
    } else {
      ++it;
    }
  }
  return released;
}

bool FlapDamper::suppressed(graph::NodeId k) const {
  auto it = states_.find(k);
  return it != states_.end() && it->second.suppressed;
}

double FlapDamper::penalty(graph::NodeId k, Time now) const {
  auto it = states_.find(k);
  return it == states_.end() ? 0.0 : decayed(it->second, now);
}

void FlapDamper::reset() { states_.clear(); }

}  // namespace mdr::proto
