// Control-message checksum.
//
// The structural checks in the codecs (lengths, ranges, enum values) catch
// truncation and wildly malformed buffers, but a single bit flip inside a
// sequence number or a cost mantissa produces a perfectly well-formed
// message with wrong content — and an inflated sequence number poisons the
// receiver's staleness filter so every later *genuine* update from that
// origin is discarded. Every control message therefore carries a 32-bit
// FNV-1a checksum trailer; decode recomputes it and rejects mismatches.
#pragma once

#include <cstdint>
#include <span>

namespace mdr::proto {

/// 32-bit FNV-1a over a byte span. Not cryptographic — it defends against
/// random corruption (any single bit flip changes the digest), not forgery.
inline std::uint32_t checksum32(std::span<const std::uint8_t> bytes) {
  std::uint32_t h = 0x811c9dc5u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x01000193u;
  }
  return h;
}

}  // namespace mdr::proto
