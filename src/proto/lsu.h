// Link-state update (LSU) messages (paper Section 4.1).
//
// "The unit of information exchanged between routers is a link-state update
// message. A router sends an LSU message containing one or more entries,
// with each entry specifying addition, deletion or change in cost of a link
// in the router's main topology table. Each entry consists of link
// information in the form of a triplet [head, tail, cost]. An LSU message
// contains an acknowledgment flag for acknowledging the receipt of an LSU
// message from a neighbor (used only by MPDA)."
//
// A compact binary wire codec is provided so the packet simulator can carry
// LSUs in-band and account for their bandwidth.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/topology.h"

namespace mdr::proto {

enum class LsuOp : std::uint8_t {
  kAddOrChange = 0,  ///< install the link at the given cost
  kDelete = 1,       ///< remove the link
};

struct LsuEntry {
  graph::NodeId head = graph::kInvalidNode;
  graph::NodeId tail = graph::kInvalidNode;
  graph::Cost cost = graph::kInfCost;
  LsuOp op = LsuOp::kAddOrChange;

  friend bool operator==(const LsuEntry&, const LsuEntry&) = default;
};

struct LsuMessage {
  graph::NodeId sender = graph::kInvalidNode;
  bool ack = false;  ///< acknowledges the receiver's outstanding LSU (MPDA)
  std::vector<LsuEntry> entries;
  /// Sequence number of the LSU being acknowledged (valid when ack is set).
  std::uint32_t ack_seq = 0;
  /// Sender-assigned sequence number of this entries-LSU; 0 for pure acks.
  /// Lets MPDA detect duplicates and retransmit unacknowledged LSUs, which
  /// makes the synchronization robust to message loss (silent link failures,
  /// adjacency races) — the reliable-flooding discipline of deployed
  /// link-state protocols.
  std::uint32_t seq = 0;

  /// MPDA: only LSUs that carry topology entries demand an acknowledgment;
  /// pure-ACK messages do not (otherwise acks would ack acks forever).
  bool requires_ack() const { return !entries.empty(); }

  /// Serialized size in bits (what the simulator charges the link).
  std::size_t wire_size_bits() const;

  friend bool operator==(const LsuMessage&, const LsuMessage&) = default;
};

/// Binary codec. encode() always succeeds; decode() returns nullopt on
/// malformed input (truncation, bad op codes, trailing bytes).
std::vector<std::uint8_t> encode(const LsuMessage& msg);
std::optional<LsuMessage> decode(std::span<const std::uint8_t> wire);

}  // namespace mdr::proto
