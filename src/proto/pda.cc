#include "proto/pda.h"

#include <cassert>

namespace mdr::proto {

using graph::Cost;
using graph::NodeId;

RouterTables::RouterTables(NodeId self, std::size_t num_nodes)
    : self_(self),
      num_nodes_(num_nodes),
      dist_(num_nodes, graph::kInfCost) {
  assert(self >= 0 && static_cast<std::size_t>(self) < num_nodes);
  dist_[self_] = 0;
}

void RouterTables::apply_lsu(NodeId k, std::span<const LsuEntry> entries) {
  assert(is_neighbor(k));
  LinkStateTable& topo = nbr_topo_[k];
  for (const LsuEntry& e : entries) topo.apply(e);
  // Fig. 2 step 1b-1c: refresh D_jk by running Dijkstra rooted at k on the
  // neighbor's (tree) topology.
  const auto spt = graph::dijkstra(num_nodes_, topo.edges(), k);
  nbr_dist_[k] = spt.dist;
}

void RouterTables::link_up(NodeId k, Cost cost) {
  assert(k != self_);
  assert(cost >= 0 && cost < graph::kInfCost);
  neighbors_.insert(k);
  link_costs_[k] = cost;
  nbr_topo_[k].clear();
  auto& dist = nbr_dist_[k];
  dist.assign(num_nodes_, graph::kInfCost);
  dist[k] = 0;
}

void RouterTables::link_cost_change(NodeId k, Cost cost) {
  assert(cost >= 0 && cost < graph::kInfCost);
  if (!is_neighbor(k)) return;  // raced with a link_down: nothing to update
  link_costs_[k] = cost;
}

void RouterTables::link_down(NodeId k) {
  neighbors_.erase(k);
  link_costs_.erase(k);
  nbr_topo_.erase(k);
  nbr_dist_.erase(k);
}

Cost RouterTables::link_cost(NodeId k) const {
  const auto it = link_costs_.find(k);
  return it == link_costs_.end() ? graph::kInfCost : it->second;
}

Cost RouterTables::distance_via(NodeId j, NodeId k) const {
  const auto it = nbr_dist_.find(k);
  if (it == nbr_dist_.end()) return graph::kInfCost;
  return it->second[j];
}

const LinkStateTable& RouterTables::neighbor_topology(NodeId k) const {
  static const LinkStateTable kEmpty;
  const auto it = nbr_topo_.find(k);
  return it == nbr_topo_.end() ? kEmpty : it->second;
}

std::vector<LsuEntry> RouterTables::mtu() {
  const LinkStateTable before = main_;

  // Fig. 3 steps 2-4: for every node j pick the preferred neighbor p
  // (min D_jp + l_p, ties to the lower address) and copy j's outgoing links
  // from T_p into the merged topology.
  LinkStateTable merged;
  for (NodeId j = 0; j < static_cast<NodeId>(num_nodes_); ++j) {
    if (j == self_) continue;  // own links are authoritative (step 5)
    NodeId preferred = graph::kInvalidNode;
    Cost best = graph::kInfCost;
    for (const NodeId k : neighbors_) {  // ascending: ties go to lower id
      const Cost d = distance_via(j, k) + link_cost(k);
      if (d < best) {
        best = d;
        preferred = k;
      }
    }
    if (preferred == graph::kInvalidNode) continue;
    for (const auto& [tail, cost] : nbr_topo_[preferred].links_from(j)) {
      merged.set(j, tail, cost);
    }
  }

  // Fig. 3 step 5: adjacent links override anything neighbors reported.
  for (const NodeId k : neighbors_) merged.set(self_, k, link_costs_[k]);

  // Fig. 3 step 6: prune to this router's shortest-path tree.
  const auto edges = merged.edges();
  const auto spt = graph::dijkstra(num_nodes_, edges, self_);
  LinkStateTable pruned;
  for (NodeId v = 0; v < static_cast<NodeId>(num_nodes_); ++v) {
    const NodeId parent = spt.parent[v];
    if (parent == graph::kInvalidNode) continue;
    const auto cost = merged.cost(parent, v);
    assert(cost.has_value());
    pruned.set(parent, v, *cost);
  }

  // Fig. 3 step 7: refresh D_j.
  dist_ = spt.dist;
  dist_[self_] = 0;

  main_ = pruned;
  // Fig. 3 step 8: report the differences.
  return LinkStateTable::diff(before, main_);
}

// ---------------------------------------------------------------------------
// PdaProcess (Fig. 1)

PdaProcess::PdaProcess(NodeId self, std::size_t num_nodes, LsuSink& sink)
    : tables_(self, num_nodes), sink_(&sink) {}

void PdaProcess::on_link_up(NodeId k, Cost cost) {
  tables_.link_up(k, cost);
  // Fig. 2 step 2: bring the new neighbor up to date with the full main
  // topology table (nothing to send if we know nothing yet).
  const auto full = tables_.main_topology().as_entries();
  if (!full.empty()) {
    sink_->send(k, LsuMessage{tables_.self(), /*ack=*/false, full});
    ++messages_sent_;
  }
  mtu_and_flood();
}

void PdaProcess::on_link_down(NodeId k) {
  tables_.link_down(k);
  mtu_and_flood();
}

void PdaProcess::on_link_cost_change(NodeId k, Cost cost) {
  tables_.link_cost_change(k, cost);
  mtu_and_flood();
}

void PdaProcess::on_lsu(const LsuMessage& msg) {
  assert(tables_.is_neighbor(msg.sender));
  tables_.apply_lsu(msg.sender, msg.entries);
  mtu_and_flood();
}

void PdaProcess::mtu_and_flood() {
  const auto changes = tables_.mtu();
  if (changes.empty()) return;
  const LsuMessage msg{tables_.self(), /*ack=*/false, changes};
  for (const NodeId k : tables_.neighbors()) {
    sink_->send(k, msg);
    ++messages_sent_;
  }
}

}  // namespace mdr::proto
