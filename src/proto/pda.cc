#include "proto/pda.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace mdr::proto {

using graph::Cost;
using graph::NodeId;

#ifdef MDR_AUDIT_TABLES
bool RouterTables::audit_enabled_ = true;
#else
bool RouterTables::audit_enabled_ = false;
#endif

RouterTables::RouterTables(NodeId self, std::size_t num_nodes)
    : self_(self),
      num_nodes_(num_nodes),
      dist_(num_nodes, graph::kInfCost),
      own_spt_(num_nodes, self),
      preferred_(num_nodes, graph::kInvalidNode),
      dirty_(num_nodes, 0),
      row_dirty_by_(num_nodes, graph::kInvalidNode) {
  assert(self >= 0 && static_cast<std::size_t>(self) < num_nodes);
  dist_[self_] = 0;
}

void RouterTables::mark_dirty(NodeId j, std::uint8_t bits) {
  if (j < 0 || static_cast<std::size_t>(j) >= num_nodes_) return;
  if (dirty_[j] == 0) dirty_list_.push_back(j);
  dirty_[j] |= bits;
}

void RouterTables::mark_row_dirty(NodeId j, NodeId k) {
  if (j < 0 || static_cast<std::size_t>(j) >= num_nodes_) return;
  if (dirty_[j] == 0) dirty_list_.push_back(j);
  if ((dirty_[j] & kDirtyRowAll) != 0) return;  // already maximal
  if ((dirty_[j] & kDirtyRow) != 0) {
    if (row_dirty_by_[j] != k) {
      // A second distinct neighbor's row moved: no single attribution.
      dirty_[j] = static_cast<std::uint8_t>((dirty_[j] & ~kDirtyRow) |
                                            kDirtyRowAll);
    }
  } else {
    dirty_[j] |= kDirtyRow;
    row_dirty_by_[j] = k;
  }
}

std::vector<NodeId> RouterTables::apply_lsu(NodeId k,
                                            std::span<const LsuEntry> entries) {
  assert(is_neighbor(k));
  LinkStateTable& topo = nbr_topo_[k];
  auto spt_it = nbr_spt_.find(k);
  if (spt_it == nbr_spt_.end()) {
    spt_it = nbr_spt_.emplace(k, graph::DynamicSpt(num_nodes_, k)).first;
  }
  graph::DynamicSpt& spt = spt_it->second;
  for (const LsuEntry& e : entries) {
    if (!topo.apply(e)) continue;  // no-op entry: nothing can have changed
    mark_row_dirty(e.head, k);
    if (e.op == LsuOp::kDelete) {
      spt.remove_edge(e.head, e.tail);
    } else {
      spt.set_edge(e.head, e.tail, e.cost);
    }
  }
  // Fig. 2 step 1b-1c: repair D_jk in place of the from-scratch Dijkstra.
  auto delta = spt.update();
  for (const NodeId j : delta.dist_changed) mark_dirty(j, kDirtyMerge);
  audit();
  return std::move(delta.dist_changed);
}

void RouterTables::link_up(NodeId k, Cost cost) {
  assert(k != self_);
  assert(cost >= 0 && cost < graph::kInfCost);
  // The fresh adjacency starts from an empty T_k: any destination whose row
  // the old incarnation supplied must be re-copied even if its preferred
  // neighbor does not move (k's own row is the classic case).
  if (const auto it = nbr_topo_.find(k); it != nbr_topo_.end()) {
    for (const auto& e : it->second.edges()) mark_dirty(e.from, kDirtyRowAll);
  }
  neighbors_.insert(k);
  link_costs_[k] = cost;
  nbr_topo_[k].clear();
  nbr_spt_.insert_or_assign(k, graph::DynamicSpt(num_nodes_, k));
  all_dirty_ = true;
  audit();
}

void RouterTables::link_cost_change(NodeId k, Cost cost) {
  assert(cost >= 0 && cost < graph::kInfCost);
  if (!is_neighbor(k)) return;  // raced with a link_down: nothing to update
  auto& stored = link_costs_[k];
  if (stored == cost) return;  // no input changed: MTU would be a no-op
  stored = cost;
  all_dirty_ = true;  // l_k enters every destination's argmin
  audit();
}

void RouterTables::link_down(NodeId k) {
  if (const auto it = nbr_topo_.find(k); it != nbr_topo_.end()) {
    for (const auto& e : it->second.edges()) mark_dirty(e.from, kDirtyRowAll);
  }
  neighbors_.erase(k);
  link_costs_.erase(k);
  nbr_topo_.erase(k);
  nbr_spt_.erase(k);
  all_dirty_ = true;
  audit();
}

Cost RouterTables::link_cost(NodeId k) const {
  const auto it = link_costs_.find(k);
  return it == link_costs_.end() ? graph::kInfCost : it->second;
}

Cost RouterTables::distance_via(NodeId j, NodeId k) const {
  const auto it = nbr_spt_.find(k);
  if (it == nbr_spt_.end()) return graph::kInfCost;
  return it->second.dist()[j];
}

const std::vector<Cost>* RouterTables::distances_via(NodeId k) const {
  const auto it = nbr_spt_.find(k);
  return it == nbr_spt_.end() ? nullptr : &it->second.dist();
}

const LinkStateTable& RouterTables::neighbor_topology(NodeId k) const {
  static const LinkStateTable kEmpty;
  const auto it = nbr_topo_.find(k);
  return it == nbr_topo_.end() ? kEmpty : it->second;
}

std::vector<LsuEntry> RouterTables::mtu() {
  last_mtu_dist_changed_.clear();
  // Clean tables: no input of the merge changed since the last MTU, so T,
  // D and the diff are all unchanged — the deep copy and the full merge of
  // the from-scratch procedure are skipped entirely.
  if (!all_dirty_ && dirty_list_.empty()) return {};

  // Hoisted per-neighbor views (ascending ids: ties go to the lower id).
  struct NbrView {
    NodeId k;
    const std::vector<Cost>* dist;
    const LinkStateTable* topo;
    Cost link_cost;
  };
  std::vector<NbrView> views;
  views.reserve(neighbors_.size());
  for (const NodeId k : neighbors_) {
    views.push_back(NbrView{k, &nbr_spt_.at(k).dist(), &nbr_topo_.at(k),
                            link_costs_.at(k)});
  }

  // Tails of merged_ links that changed: only their pruned entry can move
  // without a dist/parent change (a re-costed tree edge).
  std::vector<NodeId> touched;
  const auto merged_set = [&](NodeId h, NodeId t, Cost c) {
    if (merged_.set(h, t, c)) {
      own_spt_.set_edge(h, t, c);
      touched.push_back(t);
    }
  };
  const auto merged_remove = [&](NodeId h, NodeId t) {
    if (merged_.remove(h, t)) {
      own_spt_.remove_edge(h, t);
      touched.push_back(t);
    }
  };

  // Fig. 3 steps 2-4 for one destination: recompute the preferred neighbor
  // when its argmin inputs moved, and re-copy the row when the choice or
  // the chosen row's content changed. The copy itself is a hinted in-place
  // merge of the preferred neighbor's row into merged_ — no allocation,
  // and a row dirtied only by a non-preferred neighbor is skipped
  // entirely (row_dirty_by_ attributes single-neighbor row dirt).
  const auto process = [&](NodeId j, bool merge_dirty) {
    NodeId p = preferred_[j];
    const LinkStateTable* ptopo = nullptr;
    if (merge_dirty) {
      p = graph::kInvalidNode;
      Cost best = graph::kInfCost;
      for (const NbrView& v : views) {
        const Cost d = (*v.dist)[j] + v.link_cost;
        if (d < best) {
          best = d;
          p = v.k;
          ptopo = v.topo;
        }
      }
    }
    const bool p_changed = p != preferred_[j];
    preferred_[j] = p;
    const bool row_dirty =
        (dirty_[j] & kDirtyRowAll) != 0 ||
        ((dirty_[j] & kDirtyRow) != 0 && row_dirty_by_[j] == p);
    if (!p_changed && !row_dirty) return;
    if (p == graph::kInvalidNode) {
      merged_.clear_row(j, [&](NodeId t) {
        own_spt_.remove_edge(j, t);
        touched.push_back(t);
      });
      return;
    }
    if (ptopo == nullptr) ptopo = &nbr_topo_.at(p);
    merged_.replace_row_from(
        j, *ptopo,
        [&](NodeId t, Cost c) {
          own_spt_.set_edge(j, t, c);
          touched.push_back(t);
        },
        [&](NodeId t) {
          own_spt_.remove_edge(j, t);
          touched.push_back(t);
        });
  };

  if (all_dirty_) {
    for (NodeId j = 0; j < static_cast<NodeId>(num_nodes_); ++j) {
      if (j == self_) continue;  // own links are authoritative (step 5)
      process(j, /*merge_dirty=*/true);
    }
    // Fig. 3 step 5: adjacent links override anything neighbors reported.
    const auto old_self = merged_.links_from(self_);
    for (const NbrView& v : views) merged_set(self_, v.k, v.link_cost);
    for (const auto& [t, c] : old_self) {
      if (!neighbors_.contains(t)) merged_remove(self_, t);
    }
  } else {
    for (const NodeId j : dirty_list_) {
      if (j == self_) continue;
      process(j, (dirty_[j] & kDirtyMerge) != 0);
    }
  }
  if (all_dirty_) {
    std::fill(dirty_.begin(), dirty_.end(), 0);
  } else {
    for (const NodeId j : dirty_list_) dirty_[j] = 0;
  }
  dirty_list_.clear();
  all_dirty_ = false;

  // Fig. 3 step 6: repair this router's shortest-path tree.
  const auto delta = own_spt_.update();

  // Fig. 3 step 7: refresh D_j where it moved.
  const auto& own_dist = own_spt_.dist();
  for (const NodeId v : delta.dist_changed) dist_[v] = own_dist[v];
  dist_[self_] = 0;
  last_mtu_dist_changed_ = delta.dist_changed;

  // Fig. 3 step 8: update the pruned T in place and report the differences
  // in LinkStateTable::diff's order — kAddOrChange ascending by (head,
  // tail), then kDelete ascending by (head, tail). Each candidate tail is
  // handled exactly once, so add and delete key sets cannot overlap.
  std::vector<NodeId> candidates = std::move(touched);
  candidates.insert(candidates.end(), delta.dist_changed.begin(),
                    delta.dist_changed.end());
  for (const auto& [v, prev] : delta.parent_changed) candidates.push_back(v);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const auto& own_parent = own_spt_.parent();
  std::vector<LsuEntry> adds;
  std::vector<LsuEntry> dels;
  auto pc = delta.parent_changed.begin();  // ascending by node
  for (const NodeId v : candidates) {
    const NodeId new_p = own_parent[v];
    while (pc != delta.parent_changed.end() && pc->first < v) ++pc;
    const NodeId old_p =
        (pc != delta.parent_changed.end() && pc->first == v) ? pc->second
                                                             : new_p;
    if (old_p != new_p && old_p != graph::kInvalidNode) {
      if (main_.remove(old_p, v)) {
        dels.push_back(LsuEntry{old_p, v, graph::kInfCost, LsuOp::kDelete});
      }
    }
    if (new_p != graph::kInvalidNode) {
      const auto cost = merged_.cost(new_p, v);
      assert(cost.has_value());
      if (main_.set(new_p, v, *cost)) {
        adds.push_back(LsuEntry{new_p, v, *cost, LsuOp::kAddOrChange});
      }
    }
  }
  const auto by_key = [](const LsuEntry& a, const LsuEntry& b) {
    return a.head < b.head || (a.head == b.head && a.tail < b.tail);
  };
  std::sort(adds.begin(), adds.end(), by_key);
  std::sort(dels.begin(), dels.end(), by_key);
  adds.insert(adds.end(), dels.begin(), dels.end());
  audit();
  return adds;
}

void RouterTables::audit() const {
  if (!audit_enabled_) return;
  const auto fail = [this](const std::string& what) {
    throw std::logic_error("RouterTables audit (router " +
                           std::to_string(self_) + "): " + what);
  };
  // 1. Every neighbor SPT matches a from-scratch Dijkstra over T_k.
  for (const auto& [k, topo] : nbr_topo_) {
    const auto it = nbr_spt_.find(k);
    if (it == nbr_spt_.end()) fail("missing SPT for neighbor table");
    const auto ref = graph::dijkstra(num_nodes_, topo.edges(), k);
    if (ref.dist != it->second.dist() || ref.parent != it->second.parent()) {
      fail("neighbor SPT diverged for k=" + std::to_string(k));
    }
  }
  // 2. The own SPT matches a from-scratch Dijkstra over merged_.
  const auto ref = graph::dijkstra(num_nodes_, merged_.edges(), self_);
  if (ref.dist != own_spt_.dist() || ref.parent != own_spt_.parent()) {
    fail("own SPT diverged from merged topology");
  }
  // 3. main_ is exactly the pruned own tree, and dist_ its distances.
  LinkStateTable pruned;
  for (NodeId v = 0; v < static_cast<NodeId>(num_nodes_); ++v) {
    const NodeId p = own_spt_.parent()[v];
    if (p == graph::kInvalidNode) continue;
    const auto cost = merged_.cost(p, v);
    if (!cost.has_value()) fail("tree edge missing from merged topology");
    pruned.set(p, v, *cost);
  }
  if (!(pruned == main_)) fail("main table is not the pruned SPT");
  std::vector<Cost> want = own_spt_.dist();
  want[self_] = 0;
  if (want != dist_) fail("distance vector diverged");
  // 4. Every CLEAN destination's merge inputs are truly unchanged: its
  // cached argmin and merged row match a fresh evaluation. (Dirty
  // destinations are allowed to be stale until the next mtu().)
  if (!all_dirty_) {
    for (NodeId j = 0; j < static_cast<NodeId>(num_nodes_); ++j) {
      if (j == self_ || dirty_[j] != 0) continue;
      NodeId p = graph::kInvalidNode;
      Cost best = graph::kInfCost;
      for (const NodeId k : neighbors_) {
        const Cost d = distance_via(j, k) + link_cost(k);
        if (d < best) {
          best = d;
          p = k;
        }
      }
      if (p != preferred_[j]) {
        fail("stale preferred neighbor for clean destination " +
             std::to_string(j));
      }
      const auto want_row =
          p == graph::kInvalidNode
              ? std::vector<std::pair<NodeId, Cost>>{}
              : neighbor_topology(p).links_from(j);
      if (merged_.links_from(j) != want_row) {
        fail("stale merged row for clean destination " + std::to_string(j));
      }
    }
    std::vector<std::pair<NodeId, Cost>> want_self;
    for (const NodeId k : neighbors_) want_self.emplace_back(k, link_cost(k));
    if (merged_.links_from(self_) != want_self) fail("stale self row");
  }
}

void RouterTables::save(ckpt::Writer& w) const {
  main_.save(w);
  merged_.save(w);
  w.u64(nbr_topo_.size());
  for (const auto& [k, table] : nbr_topo_) {
    w.i64(k);
    table.save(w);
  }
  w.u64(link_costs_.size());
  for (const auto& [k, c] : link_costs_) {
    w.i64(k);
    w.f64(c);
  }
  w.u64(neighbors_.size());
  for (NodeId k : neighbors_) w.i64(k);
  w.u64(dist_.size());
  for (Cost c : dist_) w.f64(c);
  w.u64(preferred_.size());
  for (NodeId p : preferred_) w.i64(p);
  // Dirty state is protocol state: marks accumulated while ACTIVE are
  // consumed by the deferred MTU after resume.
  w.u64(dirty_.size());
  for (std::uint8_t d : dirty_) w.u8(d);
  w.u64(row_dirty_by_.size());
  for (NodeId v : row_dirty_by_) w.i64(v);
  w.b(all_dirty_);
}

void RouterTables::load(ckpt::Reader& r) {
  main_.load(r);
  merged_.load(r);
  nbr_topo_.clear();
  std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto k = static_cast<NodeId>(r.i64());
    nbr_topo_[k].load(r);
  }
  link_costs_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto k = static_cast<NodeId>(r.i64());
    link_costs_[k] = r.f64();
  }
  neighbors_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    neighbors_.insert(static_cast<NodeId>(r.i64()));
  }
  dist_.resize(r.u64());
  for (Cost& c : dist_) c = r.f64();
  preferred_.resize(r.u64());
  for (NodeId& p : preferred_) p = static_cast<NodeId>(r.i64());
  dirty_.resize(r.u64());
  dirty_list_.clear();
  for (std::size_t j = 0; j < dirty_.size(); ++j) {
    dirty_[j] = r.u8();
    if (dirty_[j] != 0) dirty_list_.push_back(static_cast<NodeId>(j));
  }
  row_dirty_by_.resize(r.u64());
  for (NodeId& v : row_dirty_by_) v = static_cast<NodeId>(r.i64());
  all_dirty_ = r.b();
  // The SPTs are derived state: rebuild canonically (dynamic_spt.h — the
  // from-scratch tree IS the incrementally maintained tree, bit for bit).
  own_spt_ = graph::DynamicSpt(num_nodes_, self_);
  for (const auto& e : merged_.edges()) own_spt_.set_edge(e.from, e.to, e.cost);
  own_spt_.rebuild();
  nbr_spt_.clear();
  for (const auto& [k, topo] : nbr_topo_) {
    auto [it, inserted] = nbr_spt_.emplace(k, graph::DynamicSpt(num_nodes_, k));
    for (const auto& e : topo.edges()) it->second.set_edge(e.from, e.to, e.cost);
    it->second.rebuild();
  }
  audit();
}

// ---------------------------------------------------------------------------
// PdaProcess (Fig. 1)

PdaProcess::PdaProcess(NodeId self, std::size_t num_nodes, LsuSink& sink)
    : tables_(self, num_nodes), sink_(&sink) {}

void PdaProcess::on_link_up(NodeId k, Cost cost) {
  tables_.link_up(k, cost);
  // Fig. 2 step 2: bring the new neighbor up to date with the full main
  // topology table (nothing to send if we know nothing yet).
  const auto full = tables_.main_topology().as_entries();
  if (!full.empty()) {
    sink_->send(k, LsuMessage{tables_.self(), /*ack=*/false, full});
    ++messages_sent_;
  }
  mtu_and_flood();
}

void PdaProcess::on_link_down(NodeId k) {
  tables_.link_down(k);
  mtu_and_flood();
}

void PdaProcess::on_link_cost_change(NodeId k, Cost cost) {
  tables_.link_cost_change(k, cost);
  mtu_and_flood();
}

void PdaProcess::on_lsu(const LsuMessage& msg) {
  assert(tables_.is_neighbor(msg.sender));
  tables_.apply_lsu(msg.sender, msg.entries);
  mtu_and_flood();
}

void PdaProcess::mtu_and_flood() {
  const auto changes = tables_.mtu();
  if (changes.empty()) return;
  const LsuMessage msg{tables_.self(), /*ack=*/false, changes};
  for (const NodeId k : tables_.neighbors()) {
    sink_->send(k, msg);
    ++messages_sent_;
  }
}

}  // namespace mdr::proto
