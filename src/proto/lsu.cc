#include "proto/lsu.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "proto/checksum.h"

namespace mdr::proto {

namespace {

constexpr std::size_t kHeaderBytes = 4 + 1 + 4 + 4 + 2;  // sender, flags, ack_seq, seq, count
constexpr std::size_t kEntryBytes = 4 + 4 + 8 + 1;
constexpr std::size_t kTrailerBytes = 4;  // FNV-1a checksum (see checksum.h)

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> wire) : wire_(wire) {}

  bool u8(std::uint8_t& v) { return take(1) && (v = wire_[pos_ - 1], true); }
  bool u16(std::uint16_t& v) {
    if (!take(2)) return false;
    v = static_cast<std::uint16_t>(wire_[pos_ - 2] | (wire_[pos_ - 1] << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (!take(4)) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(wire_[pos_ - 4 + i]) << (8 * i);
    }
    return true;
  }
  bool f64(double& v) {
    if (!take(8)) return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(wire_[pos_ - 8 + i]) << (8 * i);
    }
    v = std::bit_cast<double>(bits);
    return true;
  }
  bool exhausted() const { return pos_ == wire_.size(); }

 private:
  bool take(std::size_t n) {
    if (pos_ + n > wire_.size()) return false;
    pos_ += n;
    return true;
  }
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
};

}  // namespace

std::size_t LsuMessage::wire_size_bits() const {
  return 8 * (kHeaderBytes + kEntryBytes * entries.size() + kTrailerBytes);
}

std::vector<std::uint8_t> encode(const LsuMessage& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + kEntryBytes * msg.entries.size() + kTrailerBytes);
  put_u32(out, static_cast<std::uint32_t>(msg.sender));
  out.push_back(msg.ack ? 1 : 0);
  put_u32(out, msg.ack_seq);
  put_u32(out, msg.seq);
  put_u16(out, static_cast<std::uint16_t>(msg.entries.size()));
  for (const LsuEntry& e : msg.entries) {
    put_u32(out, static_cast<std::uint32_t>(e.head));
    put_u32(out, static_cast<std::uint32_t>(e.tail));
    put_f64(out, e.cost);
    out.push_back(static_cast<std::uint8_t>(e.op));
  }
  put_u32(out, checksum32(out));
  return out;
}

std::optional<LsuMessage> decode(std::span<const std::uint8_t> wire) {
  // Checksum first: structural checks below cannot catch an in-range bit
  // flip (e.g. inside seq, which would poison the staleness filter).
  if (wire.size() < kHeaderBytes + kTrailerBytes) return std::nullopt;
  const auto body = wire.first(wire.size() - kTrailerBytes);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(wire[body.size() + i]) << (8 * i);
  }
  if (stored != checksum32(body)) return std::nullopt;

  Reader r(body);
  LsuMessage msg;
  std::uint32_t sender = 0;
  std::uint8_t flags = 0;
  std::uint16_t count = 0;
  if (!r.u32(sender) || !r.u8(flags) || !r.u32(msg.ack_seq) ||
      !r.u32(msg.seq) || !r.u16(count)) {
    return std::nullopt;
  }
  if (flags > 1) return std::nullopt;
  // The count fully determines the message size; validate it before
  // reserving so a length-lying header can neither over-allocate nor leave
  // trailing garbage accepted.
  if (body.size() != kHeaderBytes + kEntryBytes * count) return std::nullopt;
  msg.sender = static_cast<graph::NodeId>(sender);
  if (msg.sender < 0) return std::nullopt;  // corrupted id
  msg.ack = flags == 1;
  msg.entries.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    LsuEntry e;
    std::uint32_t head = 0, tail = 0;
    std::uint8_t op = 0;
    if (!r.u32(head) || !r.u32(tail) || !r.f64(e.cost) || !r.u8(op)) {
      return std::nullopt;
    }
    if (op > static_cast<std::uint8_t>(LsuOp::kDelete)) return std::nullopt;
    e.head = static_cast<graph::NodeId>(head);
    e.tail = static_cast<graph::NodeId>(tail);
    if (e.head < 0 || e.tail < 0) return std::nullopt;
    // Costs are nonnegative finite numbers or kInfCost (a deleted link);
    // NaN or negative values can only come from corruption and would poison
    // every distance computation downstream.
    if (std::isnan(e.cost) || e.cost < 0) return std::nullopt;
    e.op = static_cast<LsuOp>(op);
    msg.entries.push_back(e);
  }
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

}  // namespace mdr::proto
