#include "cost/estimators.h"

#include <algorithm>
#include <cassert>

#include "cost/delay_model.h"

namespace mdr::cost {

// ---------------------------------------------------------------- analytic

AnalyticMm1Estimator::AnalyticMm1Estimator(double capacity_bps,
                                           double prop_delay_s,
                                           double mean_packet_bits)
    : capacity_bps_(capacity_bps),
      prop_delay_s_(prop_delay_s),
      mean_packet_bits_(mean_packet_bits) {
  assert(capacity_bps > 0);
  assert(mean_packet_bits > 0);
}

void AnalyticMm1Estimator::observe(const PacketObservation& obs) {
  bits_seen_ += obs.size_bits;
}

double AnalyticMm1Estimator::estimate(double window_start, double window_end) {
  assert(window_end > window_start);
  const double flow = bits_seen_ / (window_end - window_start);
  const LinkDelayModel model{capacity_bps_, prop_delay_s_, mean_packet_bits_};
  return model.marginal_delay_clamped(flow);
}

void AnalyticMm1Estimator::reset() { bits_seen_ = 0; }

// -------------------------------------------------------------- observable

ObservableEstimator::ObservableEstimator(double prop_delay_s,
                                         double fallback_service_s)
    : prop_delay_s_(prop_delay_s), mean_service_s_(fallback_service_s) {
  assert(fallback_service_s > 0);
}

void ObservableEstimator::observe(const PacketObservation& obs) {
  sum_delay_ += obs.departure_time - obs.arrival_time;
  ++packets_;
  // Running mean of service times across windows; replaces the fallback as
  // the zero-load cost seed once real traffic has been seen.
  ++service_samples_;
  mean_service_s_ +=
      (obs.service_time - mean_service_s_) / static_cast<double>(service_samples_);
}

double ObservableEstimator::estimate(double window_start, double window_end) {
  assert(window_end > window_start);
  if (packets_ == 0) return mean_service_s_ + prop_delay_s_;
  const double horizon = window_end - window_start;
  const double wq = sum_delay_ / static_cast<double>(packets_);
  const double lambda = static_cast<double>(packets_) / horizon;
  return wq + lambda * wq * wq + prop_delay_s_;
}

void ObservableEstimator::reset() {
  sum_delay_ = 0;
  packets_ = 0;
}

// ------------------------------------------------------------- utilization

UtilizationEstimator::UtilizationEstimator(double prop_delay_s,
                                           double fallback_service_s)
    : prop_delay_s_(prop_delay_s), mean_service_s_(fallback_service_s) {
  assert(fallback_service_s > 0);
}

void UtilizationEstimator::observe(const PacketObservation& obs) {
  sum_service_ += obs.service_time;
  ++packets_;
  ++service_samples_;
  mean_service_s_ += (obs.service_time - mean_service_s_) /
                     static_cast<double>(service_samples_);
}

double UtilizationEstimator::estimate(double window_start, double window_end) {
  assert(window_end > window_start);
  if (packets_ == 0) return mean_service_s_ + prop_delay_s_;
  const double horizon = window_end - window_start;
  const double rho = std::min(sum_service_ / horizon, 0.98);
  const double slack = 1.0 - rho;
  return mean_service_s_ / (slack * slack) + prop_delay_s_;
}

void UtilizationEstimator::reset() {
  sum_service_ = 0;
  packets_ = 0;
}

// --------------------------------------------------------------------- ipa

IpaBusyPeriodEstimator::IpaBusyPeriodEstimator(double prop_delay_s,
                                               double fallback_service_s)
    : prop_delay_s_(prop_delay_s), mean_service_s_(fallback_service_s) {
  assert(fallback_service_s > 0);
}

void IpaBusyPeriodEstimator::observe(const PacketObservation& obs) {
  const double wait = obs.departure_time - obs.arrival_time - obs.service_time;
  assert(wait >= -1e-12);
  // A packet's contribution to ∫U(t)dt: it sits at full size while waiting,
  // then drains linearly during its own transmission.
  workload_integral_ +=
      obs.service_time * std::max(wait, 0.0) +
      0.5 * obs.service_time * obs.service_time;
  if (obs.started_busy_period) {
    busy_period_start_ = obs.arrival_time;
    in_busy_period_ = true;
  } else if (in_busy_period_) {
    offset_integral_ += obs.arrival_time - busy_period_start_;
  }
  sum_service_ += obs.service_time;
  ++packets_;
  ++service_samples_;
  mean_service_s_ +=
      (obs.service_time - mean_service_s_) / static_cast<double>(service_samples_);
}

double IpaBusyPeriodEstimator::estimate(double window_start,
                                        double window_end) {
  assert(window_end > window_start);
  if (packets_ == 0) return mean_service_s_ + prop_delay_s_;
  const double horizon = window_end - window_start;
  const double avg_workload = workload_integral_ / horizon;
  const double avg_future_arrivals = offset_integral_ / horizon;  // R̄
  const double lambda = static_cast<double>(packets_) / horizon;
  const double rho = std::min(sum_service_ / horizon, 0.98);
  // Virtual extra packet inserted at a uniform time: it waits out the
  // current workload plus its own service, and inflicts one mean service
  // time on every later arrival in the (slightly extended) busy period.
  const double inflicted =
      mean_service_s_ *
      (avg_future_arrivals + lambda * mean_service_s_ / (1.0 - rho));
  return avg_workload + mean_service_s_ + inflicted + prop_delay_s_;
}

void IpaBusyPeriodEstimator::reset() {
  // busy_period_start_/in_busy_period_ deliberately survive the window
  // boundary: a busy period that straddles two windows keeps contributing
  // correct arrival offsets in the second window.
  workload_integral_ = 0;
  offset_integral_ = 0;
  sum_service_ = 0;
  packets_ = 0;
}

// ----------------------------------------------------------------- factory

std::unique_ptr<MarginalDelayEstimator> make_estimator(
    EstimatorKind kind, double capacity_bps, double prop_delay_s,
    double mean_packet_bits) {
  const double service = mean_packet_bits / capacity_bps;
  switch (kind) {
    case EstimatorKind::kAnalyticMm1:
      return std::make_unique<AnalyticMm1Estimator>(capacity_bps, prop_delay_s,
                                                    mean_packet_bits);
    case EstimatorKind::kObservable:
      return std::make_unique<ObservableEstimator>(prop_delay_s, service);
    case EstimatorKind::kIpa:
      return std::make_unique<IpaBusyPeriodEstimator>(prop_delay_s, service);
    case EstimatorKind::kUtilization:
      return std::make_unique<UtilizationEstimator>(prop_delay_s, service);
  }
  return nullptr;
}

}  // namespace mdr::cost
