// Two-timescale link cost feed (paper Section 4.2).
//
// "link costs measured over short intervals of length Ts are used for
// routing-parameter computation and link costs measured over longer
// intervals of length Tl are used for routing-path computation."
//
// A DualTimescaleCost owns the smoothing of raw window estimates into the
// short-term cost (consumed locally by the AH heuristic every Ts) and the
// long-term cost (advertised in LSUs every Tl). Long-term values are only
// flagged for reporting when they move by more than a relative threshold,
// since "sending frequent update messages consumes bandwidth and can also
// cause oscillations under high loads".
#pragma once

#include <cassert>

#include "util/stats.h"

namespace mdr::cost {

class DualTimescaleCost {
 public:
  struct Options {
    double short_alpha = 0.6;   ///< EWMA weight for Ts-window estimates
    double long_alpha = 0.4;    ///< EWMA weight for Tl-window estimates
    double report_threshold = 0.1;  ///< relative change that triggers an LSU
  };

  explicit DualTimescaleCost(double initial_cost)
      : DualTimescaleCost(initial_cost, Options{}) {}

  DualTimescaleCost(double initial_cost, Options options)
      : options_(options),
        short_ewma_(options.short_alpha),
        long_ewma_(options.long_alpha),
        last_reported_(initial_cost) {
    assert(initial_cost > 0);
    short_ewma_.add(initial_cost);
    long_ewma_.add(initial_cost);
  }

  /// Folds in one Ts-window estimate; returns the new short-term cost.
  double on_short_window(double estimate) {
    assert(estimate > 0);
    short_ewma_.add(estimate);
    return short_ewma_.value();
  }

  struct LongUpdate {
    double cost = 0;      ///< new long-term cost
    bool report = false;  ///< true if it moved enough to advertise
  };

  /// Folds in one Tl-window estimate; flags whether to advertise.
  LongUpdate on_long_window(double estimate) {
    assert(estimate > 0);
    long_ewma_.add(estimate);
    const double cost = long_ewma_.value();
    const double rel =
        std::abs(cost - last_reported_) / std::max(last_reported_, 1e-12);
    LongUpdate update{cost, rel > options_.report_threshold};
    if (update.report) last_reported_ = cost;
    return update;
  }

  double short_cost() const { return short_ewma_.value(); }
  double long_cost() const { return long_ewma_.value(); }
  double last_reported() const { return last_reported_; }

  void save(ckpt::Writer& w) const {
    short_ewma_.save(w);
    long_ewma_.save(w);
    w.f64(last_reported_);
  }
  void load(ckpt::Reader& r) {
    short_ewma_.load(r);
    long_ewma_.load(r);
    last_reported_ = r.f64();
  }

 private:
  Options options_;
  Ewma short_ewma_;
  Ewma long_ewma_;
  double last_reported_;
};

}  // namespace mdr::cost
