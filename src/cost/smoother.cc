// DualTimescaleCost is header-only; this translation unit anchors the
// library target.
#include "cost/smoother.h"
