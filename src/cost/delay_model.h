// Link delay model (paper Section 4.3, Eq. 24).
//
// The paper models each link as an M/M/1 queue: for flow f (bits/s) on a
// link of capacity C (bits/s) and propagation delay tau,
//
//     D(f) = f/(C - f) + tau * f            (total delay rate, Eq. 24)
//     D'(f) = C/(C - f)^2 + tau             (marginal delay = link cost)
//
// We carry the mean packet length L (bits) explicitly so the same model
// predicts per-packet delays in the packet simulator (exponential packet
// sizes of mean L => M/M/1 with service rate C/L pkt/s):
//
//     per-packet delay  w(f) = L/(C - f) + tau
//     total delay rate  D(f) = (f/L) * w(f) = f/(C - f) + tau*f/L
//     marginal cost     D'(f) = d D / d(pkt rate) = L*C/(C - f)^2 + tau
//
// With L = 1 these reduce exactly to the paper's expressions. All marginal
// costs in the library are derivatives with respect to *packet* rate, so at
// f = 0 the cost of a link is L/C + tau: the latency of one packet, which
// makes zero-load shortest-marginal paths coincide with min-latency paths.
#pragma once

namespace mdr::cost {

struct LinkDelayModel {
  double capacity_bps = 10e6;     ///< C
  double prop_delay_s = 1e-3;     ///< tau
  double mean_packet_bits = 8e3;  ///< L

  /// Expected per-packet delay (queueing + transmission + propagation) at
  /// offered flow f bits/s. Infinite for f >= C.
  double packet_delay(double flow_bps) const;

  /// Expected queueing + transmission part only (no propagation).
  double queueing_delay(double flow_bps) const;

  /// Total delay rate D(f): packets/s in flight times mean delay (Eq. 3
  /// summand). Infinite for f >= C.
  double total_delay_rate(double flow_bps) const;

  /// Marginal delay D'(f) with respect to packet rate; the link cost.
  double marginal_delay(double flow_bps) const;

  /// Second derivative of D with respect to packet rate: the curvature
  /// 2 L^2 C / (C - f)^3, used by second-derivative (Bertsekas-Gallager)
  /// scaling of the OPT gradient step. Infinite for f >= C.
  double delay_curvature(double flow_bps) const;

  /// Curvature with utilization clamped to rho_max (live feeds).
  double delay_curvature_clamped(double flow_bps, double rho_max = 0.98) const;

  /// Marginal delay with utilization clamped to rho_max.
  ///
  /// The paper notes Eq. (24) "becomes unstable when f approaches C"; live
  /// cost feeds clamp so a transiently saturated link reports a very large
  /// but finite cost instead of breaking comparisons downstream.
  double marginal_delay_clamped(double flow_bps, double rho_max = 0.98) const;

  /// Utilization f/C.
  double utilization(double flow_bps) const { return flow_bps / capacity_bps; }
};

}  // namespace mdr::cost
