#include "cost/delay_model.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mdr::cost {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double LinkDelayModel::queueing_delay(double flow_bps) const {
  assert(flow_bps >= 0);
  if (flow_bps >= capacity_bps) return kInf;
  return mean_packet_bits / (capacity_bps - flow_bps);
}

double LinkDelayModel::packet_delay(double flow_bps) const {
  return queueing_delay(flow_bps) + prop_delay_s;
}

double LinkDelayModel::total_delay_rate(double flow_bps) const {
  assert(flow_bps >= 0);
  if (flow_bps >= capacity_bps) return kInf;
  const double pkt_rate = flow_bps / mean_packet_bits;
  return pkt_rate * packet_delay(flow_bps);
}

double LinkDelayModel::marginal_delay(double flow_bps) const {
  assert(flow_bps >= 0);
  if (flow_bps >= capacity_bps) return kInf;
  const double slack = capacity_bps - flow_bps;
  return mean_packet_bits * capacity_bps / (slack * slack) + prop_delay_s;
}

double LinkDelayModel::delay_curvature(double flow_bps) const {
  assert(flow_bps >= 0);
  if (flow_bps >= capacity_bps) return kInf;
  const double slack = capacity_bps - flow_bps;
  return 2.0 * mean_packet_bits * mean_packet_bits * capacity_bps /
         (slack * slack * slack);
}

double LinkDelayModel::delay_curvature_clamped(double flow_bps,
                                               double rho_max) const {
  assert(rho_max > 0 && rho_max < 1);
  return delay_curvature(std::min(flow_bps, rho_max * capacity_bps));
}

double LinkDelayModel::marginal_delay_clamped(double flow_bps,
                                              double rho_max) const {
  assert(rho_max > 0 && rho_max < 1);
  return marginal_delay(std::min(flow_bps, rho_max * capacity_bps));
}

}  // namespace mdr::cost
