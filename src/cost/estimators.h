// Online marginal-delay estimation (paper Section 4.3).
//
// The paper measures link costs (marginal delays) over intervals instead of
// trusting the closed-form M/M/1 expression, "because the M/M/1 assumption
// does not hold in practice in the presence of very bursty traffic", and
// borrows an on-line perturbation-analysis (PA) technique from
// Cassandras-Abidi-Towsley whose key advantage is that it needs no a-priori
// knowledge of link capacity. We provide three interchangeable estimators
// behind one interface (see DESIGN.md §5 for the substitution rationale):
//
//  * AnalyticMm1Estimator  — measures mean flow over the window and plugs it
//    into D'(f) with known capacity. Reference / oracle.
//  * ObservableEstimator   — capacity-free. Uses only observed per-packet
//    delays W and packet rate lambda:  D' ≈ W_q + lambda * W_q^2 + tau,
//    which is exact for M/M/1 (d(lambda W)/d lambda with W' = W^2).
//  * IpaBusyPeriodEstimator — capacity-free, in the PA spirit: derives the
//    marginal from the sample path (time-averaged workload, mean service
//    time, and intra-busy-period arrival offsets). For one virtual extra
//    packet inserted at a uniform time, the induced extra delay is
//        workload(t) + s̄ + s̄ * R(t)
//    where R(t) counts later arrivals in the same busy period; averaging the
//    three terms over the window gives the estimate.
//
// Estimators consume per-packet events from the link and produce one cost at
// the end of each measurement window.
#pragma once

#include <memory>
#include <string>

#include "ckpt/ckpt.h"

namespace mdr::cost {

/// Everything an estimator may observe about one transmitted packet.
struct PacketObservation {
  double arrival_time = 0;    ///< when the packet joined the link queue
  double departure_time = 0;  ///< when transmission finished
  double service_time = 0;    ///< transmission time (size / capacity)
  double size_bits = 0;
  bool started_busy_period = false;  ///< queue was empty on arrival
};

/// Interface for per-link marginal-delay estimators.
///
/// Usage per measurement window: observe() every departure, then
/// estimate(window_start, window_end) and reset().
class MarginalDelayEstimator {
 public:
  virtual ~MarginalDelayEstimator() = default;

  virtual void observe(const PacketObservation& obs) = 0;

  /// Marginal delay estimate for the elapsed window, in seconds per unit
  /// packet rate. Must return a positive, finite value even for an idle
  /// window (the zero-load cost).
  virtual double estimate(double window_start, double window_end) = 0;

  virtual void reset() = 0;

  virtual std::string name() const = 0;

  /// Checkpoints the mutable window state (the configuration members are
  /// reconstructed from SimConfig, not stored).
  virtual void save(ckpt::Writer& w) const = 0;
  virtual void load(ckpt::Reader& r) = 0;
};

/// Oracle estimator: D'(measured mean flow) from the analytic model.
/// Requires the true link capacity.
class AnalyticMm1Estimator final : public MarginalDelayEstimator {
 public:
  AnalyticMm1Estimator(double capacity_bps, double prop_delay_s,
                       double mean_packet_bits);

  void observe(const PacketObservation& obs) override;
  double estimate(double window_start, double window_end) override;
  void reset() override;
  std::string name() const override { return "mm1"; }
  void save(ckpt::Writer& w) const override { w.f64(bits_seen_); }
  void load(ckpt::Reader& r) override { bits_seen_ = r.f64(); }

 private:
  double capacity_bps_;
  double prop_delay_s_;
  double mean_packet_bits_;
  double bits_seen_ = 0;
};

/// Capacity-free estimator from observed delays and rate:
/// D' = W_q + lambda * W_q^2 + tau.
///
/// `fallback_service_s` seeds the zero-load cost for windows with no
/// traffic; it should be the transmission time of a mean-size packet, which
/// the estimator refines from observations as soon as any packet passes.
class ObservableEstimator final : public MarginalDelayEstimator {
 public:
  ObservableEstimator(double prop_delay_s, double fallback_service_s);

  void observe(const PacketObservation& obs) override;
  double estimate(double window_start, double window_end) override;
  void reset() override;
  std::string name() const override { return "observable"; }
  void save(ckpt::Writer& w) const override {
    w.f64(mean_service_s_);
    w.u64(service_samples_);
    w.f64(sum_delay_);
    w.u64(packets_);
  }
  void load(ckpt::Reader& r) override {
    mean_service_s_ = r.f64();
    service_samples_ = r.u64();
    sum_delay_ = r.f64();
    packets_ = r.u64();
  }

 private:
  double prop_delay_s_;
  double mean_service_s_;  ///< running mean over all windows
  std::size_t service_samples_ = 0;
  double sum_delay_ = 0;
  std::size_t packets_ = 0;
};

/// Capacity-free estimator from the observed utilization (busy fraction)
/// and mean service time:
///     rho_hat = (sum of service times) / window,   s_bar = mean service
///     D' = s_bar / (1 - rho_hat)^2 + tau
/// which equals the analytic M/M/1 marginal exactly when rho_hat = f/C.
/// Because the busy fraction is a time integral it has far lower variance
/// than delay-based estimators at high load; this is the library's default
/// online estimator (it shares PA's key property: no a-priori capacity).
class UtilizationEstimator final : public MarginalDelayEstimator {
 public:
  UtilizationEstimator(double prop_delay_s, double fallback_service_s);

  void observe(const PacketObservation& obs) override;
  double estimate(double window_start, double window_end) override;
  void reset() override;
  std::string name() const override { return "utilization"; }
  void save(ckpt::Writer& w) const override {
    w.f64(mean_service_s_);
    w.u64(service_samples_);
    w.f64(sum_service_);
    w.u64(packets_);
  }
  void load(ckpt::Reader& r) override {
    mean_service_s_ = r.f64();
    service_samples_ = r.u64();
    sum_service_ = r.f64();
    packets_ = r.u64();
  }

 private:
  double prop_delay_s_;
  double mean_service_s_;
  std::size_t service_samples_ = 0;
  double sum_service_ = 0;
  std::size_t packets_ = 0;
};

/// Busy-period perturbation estimator (see file comment).
class IpaBusyPeriodEstimator final : public MarginalDelayEstimator {
 public:
  IpaBusyPeriodEstimator(double prop_delay_s, double fallback_service_s);

  void observe(const PacketObservation& obs) override;
  double estimate(double window_start, double window_end) override;
  void reset() override;
  std::string name() const override { return "ipa"; }
  void save(ckpt::Writer& w) const override {
    w.f64(mean_service_s_);
    w.u64(service_samples_);
    w.f64(workload_integral_);
    w.f64(offset_integral_);
    w.f64(busy_period_start_);
    w.b(in_busy_period_);
    w.f64(sum_service_);
    w.u64(packets_);
  }
  void load(ckpt::Reader& r) override {
    mean_service_s_ = r.f64();
    service_samples_ = r.u64();
    workload_integral_ = r.f64();
    offset_integral_ = r.f64();
    busy_period_start_ = r.f64();
    in_busy_period_ = r.b();
    sum_service_ = r.f64();
    packets_ = r.u64();
  }

 private:
  double prop_delay_s_;
  double mean_service_s_;
  std::size_t service_samples_ = 0;
  double workload_integral_ = 0;  ///< ∫ U(t) dt over the window
  double offset_integral_ = 0;    ///< Σ (arrival_i - busy period start)
  double busy_period_start_ = 0;
  bool in_busy_period_ = false;
  double sum_service_ = 0;
  std::size_t packets_ = 0;
};

enum class EstimatorKind { kAnalyticMm1, kObservable, kIpa, kUtilization };

/// Factory used by the simulator's link cost feeds.
std::unique_ptr<MarginalDelayEstimator> make_estimator(
    EstimatorKind kind, double capacity_bps, double prop_delay_s,
    double mean_packet_bits);

}  // namespace mdr::cost
