#include "runner/experiment_runner.h"

#include <cassert>
#include <iomanip>
#include <limits>
#include <ostream>
#include <utility>

#include "runner/pool.h"
#include "sim/experiment.h"

namespace mdr::runner {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  // SplitMix64 over the pair: absorb the index into the base, then run two
  // finalization rounds. Avalanches every input bit, so neighbouring job
  // indices land in unrelated regions of the seed space.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (job_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

ExperimentRunner::ExperimentRunner(Options options)
    : options_(std::move(options)) {}

std::vector<sim::SimResult> ExperimentRunner::run(const std::vector<Job>& jobs) {
  std::vector<sim::SimResult> results(jobs.size());
  Pool pool(options_.jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job* job = &jobs[i];
    sim::SimResult* slot = &results[i];
    const std::uint64_t seed = derive_seed(options_.base_seed, i);
    pool.submit([job, slot, seed] {
      sim::ExperimentSpec spec = job->spec;
      spec.config.seed = seed;
      *slot = sim::run_experiment(spec, job->mode);
    });
  }
  pool.wait();
  return results;
}

BatchResult ExperimentRunner::run_replicated(const sim::ExperimentSpec& spec,
                                             const std::string& mode,
                                             int replications) {
  assert(replications > 0);
  std::vector<Job> jobs(static_cast<std::size_t>(replications),
                        Job{spec, mode});
  BatchResult batch;
  batch.mode = mode;
  batch.base_seed = options_.base_seed;
  batch.jobs = options_.jobs;
  batch.runs = run(jobs);
  batch.flows = aggregate_flows(batch.runs);
  for (const auto& r : batch.runs) {
    batch.avg_delay_s.add(r.avg_delay_s);
    // Deterministic merge order: job index, never completion order.
    if (r.telemetry.has_value()) batch.metrics.merge(r.telemetry->metrics);
  }
  return batch;
}

std::vector<FlowAggregate> aggregate_flows(
    const std::vector<sim::SimResult>& runs) {
  std::vector<FlowAggregate> out;
  if (runs.empty()) return out;
  const std::size_t num_flows = runs.front().flows.size();
  // One reservoir of per-seed mean delays per flow.
  std::vector<Samples> reservoirs(num_flows);
  for (const auto& run : runs) {
    assert(run.flows.size() == num_flows);
    for (std::size_t f = 0; f < num_flows; ++f) {
      reservoirs[f].add(run.flows[f].mean_delay_s);
    }
  }
  out.reserve(num_flows);
  for (std::size_t f = 0; f < num_flows; ++f) {
    const auto& first = runs.front().flows[f];
    OnlineStats stats;
    for (const double x : reservoirs[f].values()) stats.add(x);
    FlowAggregate agg;
    agg.src = first.src;
    agg.dst = first.dst;
    agg.offered_bps = first.offered_bps;
    agg.replications = stats.count();
    agg.mean_delay_s = stats.mean();
    agg.stddev_delay_s = stats.stddev();
    agg.ci95_delay_s = ci95_halfwidth(stats);
    out.push_back(agg);
  }
  return out;
}

namespace {

// Minimal JSON string escape: node names and labels are plain identifiers,
// but a scenario path can contain anything.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_results_json(std::ostream& os, const BatchResult& batch,
                        const std::string& name) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\n";
  os << "  \"name\": \"" << escape(name) << "\",\n";
  os << "  \"mode\": \"" << escape(batch.mode) << "\",\n";
  os << "  \"base_seed\": " << batch.base_seed << ",\n";
  os << "  \"jobs\": " << batch.jobs << ",\n";
  os << "  \"replications\": " << batch.runs.size() << ",\n";
  os << "  \"network\": {\n";
  os << "    \"mean_avg_delay_s\": " << batch.avg_delay_s.mean() << ",\n";
  os << "    \"stddev_avg_delay_s\": " << batch.avg_delay_s.stddev() << ",\n";
  os << "    \"ci95_avg_delay_s\": " << ci95_halfwidth(batch.avg_delay_s)
     << "\n";
  os << "  },\n";
  os << "  \"flows\": [\n";
  for (std::size_t f = 0; f < batch.flows.size(); ++f) {
    const auto& a = batch.flows[f];
    os << "    {\"src\": \"" << escape(a.src) << "\", \"dst\": \""
       << escape(a.dst) << "\", \"offered_bps\": " << a.offered_bps
       << ", \"replications\": " << a.replications
       << ", \"mean_delay_s\": " << a.mean_delay_s
       << ", \"stddev_delay_s\": " << a.stddev_delay_s
       << ", \"ci95_delay_s\": " << a.ci95_delay_s << "}"
       << (f + 1 < batch.flows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"runs\": [\n";
  for (std::size_t i = 0; i < batch.runs.size(); ++i) {
    const auto& r = batch.runs[i];
    os << "    {\"seed\": " << derive_seed(batch.base_seed, i)
       << ", \"avg_delay_s\": " << r.avg_delay_s
       << ", \"delivered\": " << r.delivered << ", \"dropped\": "
       << (r.dropped_no_route + r.dropped_ttl + r.dropped_queue +
           r.dropped_dead)
       << ", \"control_messages\": " << r.control_messages;
    os << ", \"control\": {\"messages\": " << r.control_messages
       << ", \"garbage\": " << r.control_garbage
       << ", \"dropped\": " << r.control_dropped
       << ", \"dropped_queue\": " << r.control_dropped_queue
       << ", \"dropped_wire\": " << r.control_dropped_wire
       << ", \"dropped_flush\": " << r.control_dropped_flush
       << ", \"dropped_down\": " << r.control_dropped_down
       << ", \"lsus_originated\": " << r.lsus_originated
       << ", \"lsus_retransmitted\": " << r.lsus_retransmitted
       << ", \"lsus_suppressed\": " << r.lsus_suppressed
       << ", \"acks\": " << r.acks_sent
       << ", \"damped_withdrawals\": " << r.damped_withdrawals
       << ", \"per_node\": [";
    for (std::size_t x = 0; x < r.node_control.size(); ++x) {
      const auto& nc = r.node_control[x];
      os << (x > 0 ? ", " : "") << "{\"node\": \"" << escape(nc.node)
         << "\", \"lsus_originated\": " << nc.lsus_originated
         << ", \"lsus_retransmitted\": " << nc.lsus_retransmitted
         << ", \"lsus_suppressed\": " << nc.lsus_suppressed
         << ", \"acks\": " << nc.acks
         << ", \"damped_withdrawals\": " << nc.damped_withdrawals << "}";
    }
    os << "]}";
    if (r.monitor.has_value()) {
      os << ", \"monitor\": " << sim::monitor_report_json(*r.monitor);
    }
    if (r.stability.has_value()) {
      os << ", \"stability\": " << sim::stability_report_json(*r.stability);
    }
    os << "}" << (i + 1 < batch.runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace mdr::runner
