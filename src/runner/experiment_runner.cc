#include "runner/experiment_runner.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include <sys/resource.h>

#include "runner/pool.h"
#include "sim/experiment.h"

namespace mdr::runner {

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  // SplitMix64 over the pair: absorb the index into the base, then run two
  // finalization rounds. Avalanches every input bit, so neighbouring job
  // indices land in unrelated regions of the seed space.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (job_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

ExperimentRunner::ExperimentRunner(Options options)
    : options_(std::move(options)) {}

namespace {

// Per-job watchdog slot. `deadline` is a steady-clock timestamp in
// milliseconds; kUnarmed means the job is not running an attempt. The
// watchdog thread only ever flips `cancel` to true; the owning job resets
// both between attempts.
struct JobWatch {
  static constexpr std::int64_t kUnarmed =
      std::numeric_limits<std::int64_t>::max();
  std::atomic<bool> cancel{false};
  std::atomic<std::int64_t> deadline_ms{kUnarmed};
};

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string marker_path(const std::string& dir, std::size_t job_index) {
  return dir + "/job" + std::to_string(job_index) + ".done";
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

std::vector<sim::SimResult> ExperimentRunner::run(
    const std::vector<Job>& jobs, std::vector<JobOutcome>* outcomes_out) {
  std::vector<sim::SimResult> results(jobs.size());
  std::vector<JobOutcome> outcomes(jobs.size());

  // One watchdog thread polls every running job's deadline and cancels
  // overruns cooperatively (the sim checks SimConfig::cancel at its safe
  // boundaries). Polling at 20 ms keeps the timeout resolution far below
  // any sensible job budget without per-job timer threads.
  std::vector<std::unique_ptr<JobWatch>> watches;
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  const bool timed = options_.job_timeout_s > 0;
  if (timed) {
    watches.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      watches.push_back(std::make_unique<JobWatch>());
    }
    watchdog = std::thread([&watches, &watchdog_stop] {
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        const std::int64_t now = steady_now_ms();
        for (const auto& w : watches) {
          if (now >= w->deadline_ms.load(std::memory_order_acquire)) {
            w->cancel.store(true, std::memory_order_release);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  const auto run_fn =
      options_.run_fn
          ? options_.run_fn
          : [](const sim::ExperimentSpec& spec, const std::string& mode) {
              return sim::run_experiment(spec, mode);
            };
  const int max_attempts = std::max(1, options_.max_attempts);

  {
    Pool pool(options_.jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const Job* job = &jobs[i];
      sim::SimResult* slot = &results[i];
      JobOutcome* outcome = &outcomes[i];
      JobWatch* watch = timed ? watches[i].get() : nullptr;
      const std::uint64_t seed = derive_seed(options_.base_seed, i);
      pool.submit([this, job, slot, outcome, watch, seed, i, max_attempts,
                   &run_fn] {
        // Batch resume: a marker from a previous (interrupted) batch means
        // this job already completed — skip it and leave the default
        // SimResult, which the aggregation stages ignore.
        if (!options_.result_dir.empty() &&
            file_exists(marker_path(options_.result_dir, i))) {
          outcome->status = "cached";
          return;
        }
        // Host cost of the whole job — every attempt plus backoff — billed
        // on exit whichever way the job ends.
        const auto job_start = std::chrono::steady_clock::now();
        const auto bill_host = [outcome, job_start] {
          outcome->wall_clock_s = std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() -
                                      job_start)
                                      .count();
          outcome->peak_rss_bytes = peak_rss_bytes();
        };
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
          outcome->attempts = attempt;
          try {
            sim::ExperimentSpec spec = job->spec;
            spec.config.seed = seed;  // same derived seed on every attempt
            if (watch != nullptr) {
              watch->cancel.store(false, std::memory_order_release);
              watch->deadline_ms.store(
                  steady_now_ms() +
                      static_cast<std::int64_t>(options_.job_timeout_s * 1e3),
                  std::memory_order_release);
              spec.config.cancel = &watch->cancel;
            }
            *slot = run_fn(spec, job->mode);
            if (watch != nullptr) {
              watch->deadline_ms.store(JobWatch::kUnarmed,
                                       std::memory_order_release);
            }
            outcome->status = "ok";
            outcome->error.clear();
            bill_host();
            if (!options_.result_dir.empty()) {
              std::ofstream marker(marker_path(options_.result_dir, i));
              marker << "seed " << seed << "\n";
            }
            return;
          } catch (const sim::SimCancelled&) {
            outcome->status = "failed";
            std::ostringstream msg;
            msg << "wall-clock budget exceeded (" << options_.job_timeout_s
                << " s)";
            outcome->error = msg.str();
          } catch (const std::exception& e) {
            outcome->status = "failed";
            outcome->error = e.what();
          } catch (...) {
            outcome->status = "failed";
            outcome->error = "unknown error";
          }
          if (watch != nullptr) {
            watch->deadline_ms.store(JobWatch::kUnarmed,
                                     std::memory_order_release);
          }
          if (attempt < max_attempts) {
            // Exponential backoff at the same seed: transient failures
            // (disk, memory pressure) get room to clear.
            const double sleep_s =
                options_.backoff_initial_s * static_cast<double>(1 << (attempt - 1));
            std::this_thread::sleep_for(
                std::chrono::duration<double>(sleep_s));
          }
        }
        bill_host();  // all attempts failed
      });
    }
    pool.wait();
  }

  if (timed) {
    watchdog_stop.store(true, std::memory_order_release);
    watchdog.join();
  }
  if (outcomes_out != nullptr) *outcomes_out = std::move(outcomes);
  return results;
}

BatchResult ExperimentRunner::run_replicated(const sim::ExperimentSpec& spec,
                                             const std::string& mode,
                                             int replications) {
  assert(replications > 0);
  std::vector<Job> jobs(static_cast<std::size_t>(replications),
                        Job{spec, mode});
  BatchResult batch;
  batch.mode = mode;
  batch.base_seed = options_.base_seed;
  batch.jobs = options_.jobs;
  batch.runs = run(jobs, &batch.outcomes);
  batch.flows = aggregate_flows(batch.runs);
  for (std::size_t i = 0; i < batch.runs.size(); ++i) {
    // Failed and cached jobs hold a default SimResult; folding their zeros
    // into the batch statistics would silently bias every aggregate.
    if (!batch.outcomes[i].ok()) continue;
    const auto& r = batch.runs[i];
    batch.avg_delay_s.add(r.avg_delay_s);
    // Deterministic merge order: job index, never completion order.
    if (r.telemetry.has_value()) batch.metrics.merge(r.telemetry->metrics);
    if (r.prof.has_value()) {
      if (batch.prof.has_value()) {
        batch.prof->merge(*r.prof);
      } else {
        batch.prof = r.prof;
      }
    }
    if (r.convergence.has_value()) {
      if (batch.convergence.has_value()) {
        batch.convergence->merge(*r.convergence);
      } else {
        batch.convergence = r.convergence;
      }
    }
  }
  return batch;
}

std::vector<FlowAggregate> aggregate_flows(
    const std::vector<sim::SimResult>& runs) {
  std::vector<FlowAggregate> out;
  // Failed/cached jobs leave a default SimResult with no flows; the first
  // populated run defines the flow set, empty runs are skipped entirely.
  const sim::SimResult* reference = nullptr;
  for (const auto& run : runs) {
    if (!run.flows.empty()) {
      reference = &run;
      break;
    }
  }
  if (reference == nullptr) return out;
  const std::size_t num_flows = reference->flows.size();
  // One reservoir of per-seed mean delays per flow.
  std::vector<Samples> reservoirs(num_flows);
  for (const auto& run : runs) {
    if (run.flows.empty()) continue;
    assert(run.flows.size() == num_flows);
    for (std::size_t f = 0; f < num_flows; ++f) {
      reservoirs[f].add(run.flows[f].mean_delay_s);
    }
  }
  out.reserve(num_flows);
  for (std::size_t f = 0; f < num_flows; ++f) {
    const auto& first = reference->flows[f];
    OnlineStats stats;
    for (const double x : reservoirs[f].values()) stats.add(x);
    FlowAggregate agg;
    agg.src = first.src;
    agg.dst = first.dst;
    agg.offered_bps = first.offered_bps;
    agg.replications = stats.count();
    agg.mean_delay_s = stats.mean();
    agg.stddev_delay_s = stats.stddev();
    agg.ci95_delay_s = ci95_halfwidth(stats);
    out.push_back(agg);
  }
  return out;
}

namespace {

// Minimal JSON string escape: node names and labels are plain identifiers,
// but a scenario path can contain anything.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_results_json(std::ostream& os, const BatchResult& batch,
                        const std::string& name) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\n";
  os << "  \"name\": \"" << escape(name) << "\",\n";
  os << "  \"mode\": \"" << escape(batch.mode) << "\",\n";
  os << "  \"base_seed\": " << batch.base_seed << ",\n";
  os << "  \"jobs\": " << batch.jobs << ",\n";
  os << "  \"replications\": " << batch.runs.size() << ",\n";
  os << "  \"network\": {\n";
  os << "    \"mean_avg_delay_s\": " << batch.avg_delay_s.mean() << ",\n";
  os << "    \"stddev_avg_delay_s\": " << batch.avg_delay_s.stddev() << ",\n";
  os << "    \"ci95_avg_delay_s\": " << ci95_halfwidth(batch.avg_delay_s)
     << "\n";
  os << "  },\n";
  os << "  \"flows\": [\n";
  for (std::size_t f = 0; f < batch.flows.size(); ++f) {
    const auto& a = batch.flows[f];
    os << "    {\"src\": \"" << escape(a.src) << "\", \"dst\": \""
       << escape(a.dst) << "\", \"offered_bps\": " << a.offered_bps
       << ", \"replications\": " << a.replications
       << ", \"mean_delay_s\": " << a.mean_delay_s
       << ", \"stddev_delay_s\": " << a.stddev_delay_s
       << ", \"ci95_delay_s\": " << a.ci95_delay_s << "}"
       << (f + 1 < batch.flows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  if (batch.prof.has_value()) {
    std::string prof_json;
    batch.prof->append_json(prof_json);
    os << "  \"prof\": " << prof_json << ",\n";
  }
  if (batch.convergence.has_value()) {
    std::string conv_json;
    batch.convergence->append_json(conv_json);
    os << "  \"convergence\": " << conv_json << ",\n";
  }
  os << "  \"runs\": [\n";
  for (std::size_t i = 0; i < batch.runs.size(); ++i) {
    const auto& r = batch.runs[i];
    // Batches produced before fault tolerance have no outcomes; treat every
    // row as a first-try success so the schema stays uniform.
    const JobOutcome* oc =
        i < batch.outcomes.size() ? &batch.outcomes[i] : nullptr;
    os << "    {\"seed\": " << derive_seed(batch.base_seed, i)
       << ", \"status\": \"" << escape(oc != nullptr ? oc->status : "ok")
       << "\", \"attempts\": " << (oc != nullptr ? oc->attempts : 1);
    if (oc != nullptr && !oc->error.empty()) {
      os << ", \"error\": \"" << escape(oc->error) << "\"";
    }
    os << ", \"avg_delay_s\": " << r.avg_delay_s
       << ", \"delivered\": " << r.delivered << ", \"dropped\": "
       << (r.dropped_no_route + r.dropped_ttl + r.dropped_queue +
           r.dropped_dead)
       << ", \"control_messages\": " << r.control_messages;
    os << ", \"control\": {\"messages\": " << r.control_messages
       << ", \"garbage\": " << r.control_garbage
       << ", \"dropped\": " << r.control_dropped
       << ", \"dropped_queue\": " << r.control_dropped_queue
       << ", \"dropped_wire\": " << r.control_dropped_wire
       << ", \"dropped_flush\": " << r.control_dropped_flush
       << ", \"dropped_down\": " << r.control_dropped_down
       << ", \"lsus_originated\": " << r.lsus_originated
       << ", \"lsus_retransmitted\": " << r.lsus_retransmitted
       << ", \"lsus_suppressed\": " << r.lsus_suppressed
       << ", \"acks\": " << r.acks_sent
       << ", \"damped_withdrawals\": " << r.damped_withdrawals
       << ", \"per_node\": [";
    for (std::size_t x = 0; x < r.node_control.size(); ++x) {
      const auto& nc = r.node_control[x];
      os << (x > 0 ? ", " : "") << "{\"node\": \"" << escape(nc.node)
         << "\", \"lsus_originated\": " << nc.lsus_originated
         << ", \"lsus_retransmitted\": " << nc.lsus_retransmitted
         << ", \"lsus_suppressed\": " << nc.lsus_suppressed
         << ", \"acks\": " << nc.acks
         << ", \"damped_withdrawals\": " << nc.damped_withdrawals << "}";
    }
    os << "]}";
    if (!r.shard_events.empty()) {
      os << ", \"shard_events\": [";
      for (std::size_t s = 0; s < r.shard_events.size(); ++s) {
        os << (s > 0 ? ", " : "") << r.shard_events[s];
      }
      os << "]";
    }
    if (oc != nullptr) {
      // Host-varying fields live in one FLAT object per row so diff tooling
      // (tests/mdrsim_telemetry.cmake) can strip it with a simple regex.
      os << ", \"host\": {\"wall_clock_s\": " << oc->wall_clock_s
         << ", \"peak_rss_bytes\": " << oc->peak_rss_bytes << "}";
    }
    if (r.monitor.has_value()) {
      os << ", \"monitor\": " << sim::monitor_report_json(*r.monitor);
    }
    if (r.stability.has_value()) {
      os << ", \"stability\": " << sim::stability_report_json(*r.stability);
    }
    os << "}" << (i + 1 < batch.runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace mdr::runner
