#include "runner/load_sweep.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

#include "sim/experiment.h"

namespace mdr::runner {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

sim::ExperimentSpec scaled(const sim::ExperimentSpec& base,
                           double multiplier) {
  sim::ExperimentSpec spec = base;
  for (auto& flow : spec.flows) flow.rate_bps *= multiplier;
  return spec;
}

SweepPoint probe(const sim::ExperimentSpec& base, const std::string& mode,
                 double multiplier) {
  SweepPoint point;
  point.multiplier = multiplier;
  const auto spec = scaled(base, multiplier);
  if (mode == "opt") {
    // Infeasible flow problem: the offered load exceeds capacity along some
    // cut, so no routing stabilizes it — unstable without simulating.
    const auto ref = sim::compute_opt_reference(spec);
    if (!ref.feasible) {
      point.unstable = true;
      point.margin = -1.0;
      point.opt_infeasible = true;
      return point;
    }
    const auto r = sim::run_with_static_phi(spec, ref.phi);
    assert(r.stability.has_value());
    point.unstable = r.stability->unstable;
    point.margin = r.stability->margin;
    point.max_queue_slope_bps = r.stability->max_queue_slope_bps;
    point.avg_delay_s = r.avg_delay_s;
    point.delivered = r.delivered;
    if (r.monitor.has_value()) {
      point.forwarding_loops = r.monitor->forwarding_loops;
      point.accounting_leaks = r.monitor->accounting_leaks;
    }
    return point;
  }
  const auto r = sim::run_experiment(spec, mode);
  assert(r.stability.has_value());
  point.unstable = r.stability->unstable;
  point.margin = r.stability->margin;
  point.max_queue_slope_bps = r.stability->max_queue_slope_bps;
  point.avg_delay_s = r.avg_delay_s;
  point.delivered = r.delivered;
  if (r.monitor.has_value()) {
    point.forwarding_loops = r.monitor->forwarding_loops;
    point.accounting_leaks = r.monitor->accounting_leaks;
  }
  return point;
}

}  // namespace

std::string sweep_point_json(const SweepPoint& point) {
  std::string out = "{\"multiplier\":";
  append_double(out, point.multiplier);
  out += ",\"unstable\":";
  out += point.unstable ? "true" : "false";
  out += ",\"margin\":";
  append_double(out, point.margin);
  out += ",\"max_queue_slope_bps\":";
  append_double(out, point.max_queue_slope_bps);
  out += ",\"avg_delay_s\":";
  append_double(out, point.avg_delay_s);
  out += ",\"delivered\":";
  append_u64(out, point.delivered);
  out += ",\"forwarding_loops\":";
  append_u64(out, point.forwarding_loops);
  out += ",\"accounting_leaks\":";
  append_u64(out, point.accounting_leaks);
  out += ",\"opt_infeasible\":";
  out += point.opt_infeasible ? "true" : "false";
  out += '}';
  return out;
}

SweepResult run_load_sweep(const sim::ExperimentSpec& base,
                           const std::string& mode,
                           const SweepOptions& options,
                           std::ostream* jsonl) {
  assert(options.lo > 0 && options.hi >= options.lo && options.steps >= 1);
  sim::ExperimentSpec spec = base;
  if (spec.config.stability.interval <= 0) {
    spec.config.stability.interval = 1.0;  // verdict source; keep defaults
  }

  SweepResult result;
  const auto run_probe = [&](double multiplier) -> const SweepPoint& {
    result.points.push_back(probe(spec, mode, multiplier));
    if (jsonl != nullptr) {
      *jsonl << sweep_point_json(result.points.back()) << '\n';
    }
    return result.points.back();
  };

  const double span = options.hi - options.lo;
  for (int i = 0; i < options.steps; ++i) {
    const double multiplier =
        options.steps == 1
            ? options.lo
            : options.lo + span * static_cast<double>(i) /
                               static_cast<double>(options.steps - 1);
    run_probe(multiplier);
  }

  // Bracket the frontier with the tightest stable-below / unstable-above
  // pair the grid produced, then halve it.
  const auto update_bracket = [&](const SweepPoint& point) {
    if (point.unstable) {
      if (result.unstable_low == 0 || point.multiplier < result.unstable_low) {
        result.unstable_low = point.multiplier;
      }
    } else if (point.multiplier > result.stable_high) {
      result.stable_high = point.multiplier;
    }
  };
  for (const auto& point : result.points) update_bracket(point);

  if (result.stable_high > 0 && result.unstable_low > result.stable_high) {
    for (int i = 0; i < options.bisect_iters; ++i) {
      const double mid = 0.5 * (result.stable_high + result.unstable_low);
      update_bracket(run_probe(mid));
    }
    result.critical = 0.5 * (result.stable_high + result.unstable_low);
  }

  // Sorted by multiplier, a sane sweep is all-stable then all-unstable.
  auto sorted = result.points;
  std::sort(sorted.begin(), sorted.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              return a.multiplier < b.multiplier;
            });
  bool seen_unstable = false;
  for (const auto& point : sorted) {
    if (point.unstable) {
      seen_unstable = true;
    } else if (seen_unstable) {
      result.monotone = false;
    }
  }
  return result;
}

}  // namespace mdr::runner
