// A fixed-size thread pool over one shared FIFO queue — deliberately no
// work stealing: every task carries its own output slot, so neither the
// number of workers nor the scheduling order can affect results, only
// wall-clock time. Used by runner::ExperimentRunner to fan independent
// simulations across cores.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mdr::runner {

class Pool {
 public:
  /// Starts `threads` workers (clamped to at least 1).
  explicit Pool(int threads);

  /// Joins all workers; pending tasks are still executed first.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Enqueues a task. Safe to call from any thread, including from inside a
  /// running task.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every submitted task has finished.
  void wait();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< dequeued but not yet finished
  bool shutting_down_ = false;
};

}  // namespace mdr::runner
