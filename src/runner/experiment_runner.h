// Parallel experiment execution: fans a batch of (experiment, mode, seed)
// jobs across a fixed-size thread pool, with per-job RNG streams derived
// deterministically from (base_seed, job_index) so aggregated results are
// bit-identical whether run with 1 worker or N. Aggregates per-flow delays
// across replications into mean / stddev / 95% CI and can emit the batch as
// JSON (schema in docs/RUNNER.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment_spec.h"
#include "sim/network_sim.h"
#include "util/stats.h"

namespace mdr::runner {

/// SplitMix64-style hash of (base_seed, job_index). Distinct indices give
/// well-separated seeds, independent of thread count and scheduling order.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index);

/// One unit of work: a complete experiment plus the routing scheme to run
/// it under ("mp" | "sp" | "opt"). The runner overwrites spec.config.seed
/// with the seed derived from the job's position in the batch.
struct Job {
  sim::ExperimentSpec spec;
  std::string mode = "mp";
};

struct Options {
  int jobs = 1;                 ///< worker threads
  std::uint64_t base_seed = 1;  ///< per-job seeds derive from this
};

/// Cross-replication statistics for one flow: the per-seed mean delays are
/// the samples; the confidence interval is Student-t at 95%.
struct FlowAggregate {
  std::string src, dst;
  double offered_bps = 0;
  std::size_t replications = 0;
  double mean_delay_s = 0;
  double stddev_delay_s = 0;
  double ci95_delay_s = 0;  ///< half-width of the 95% CI of the mean
};

/// The outcome of a replicated batch, in job-index order.
struct BatchResult {
  std::string mode;
  std::uint64_t base_seed = 0;
  int jobs = 1;
  std::vector<sim::SimResult> runs;  ///< by job index (== replication index)
  std::vector<FlowAggregate> flows;  ///< cross-seed per-flow statistics
  OnlineStats avg_delay_s;           ///< per-run network averages
  /// Per-run metric registries merged in job order — counters add,
  /// histograms merge bucketwise — so the result is identical for any
  /// worker count. Empty unless the runs carried telemetry.
  obs::MetricRegistry metrics;
};

/// Per-flow aggregation across runs that share one flow set (samples are
/// collected into util/stats.h reservoirs, one per flow).
std::vector<FlowAggregate> aggregate_flows(
    const std::vector<sim::SimResult>& runs);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(Options options = {});

  /// Runs every job (job i simulates with seed derive_seed(base_seed, i))
  /// and returns the results in job order — identical for any jobs count.
  std::vector<sim::SimResult> run(const std::vector<Job>& jobs);

  /// Replicates one experiment `replications` times under derived seeds and
  /// aggregates the per-flow delays.
  BatchResult run_replicated(const sim::ExperimentSpec& spec,
                             const std::string& mode, int replications);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Serializes a batch as JSON. `name` labels the experiment (topology or
/// scenario file). Schema documented in docs/RUNNER.md.
void write_results_json(std::ostream& os, const BatchResult& batch,
                        const std::string& name);

}  // namespace mdr::runner
