// Parallel experiment execution: fans a batch of (experiment, mode, seed)
// jobs across a fixed-size thread pool, with per-job RNG streams derived
// deterministically from (base_seed, job_index) so aggregated results are
// bit-identical whether run with 1 worker or N. Aggregates per-flow delays
// across replications into mean / stddev / 95% CI and can emit the batch as
// JSON (schema in docs/RUNNER.md).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/experiment_spec.h"
#include "sim/network_sim.h"
#include "util/stats.h"

namespace mdr::runner {

/// SplitMix64-style hash of (base_seed, job_index). Distinct indices give
/// well-separated seeds, independent of thread count and scheduling order.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index);

/// Process-wide peak resident set in bytes (getrusage ru_maxrss), as
/// recorded into JobOutcome::peak_rss_bytes.
std::uint64_t peak_rss_bytes();

/// One unit of work: a complete experiment plus the routing scheme to run
/// it under ("mp" | "sp" | "opt"). The runner overwrites spec.config.seed
/// with the seed derived from the job's position in the batch.
struct Job {
  sim::ExperimentSpec spec;
  std::string mode = "mp";
};

struct Options {
  Options() = default;
  Options(int jobs_, std::uint64_t base_seed_)
      : jobs(jobs_), base_seed(base_seed_) {}

  int jobs = 1;                 ///< worker threads
  std::uint64_t base_seed = 1;  ///< per-job seeds derive from this

  // --- fault tolerance (docs/RUNNER.md "Fault-tolerant batches") ----------

  /// Tries per job (>= 1). A job that throws is retried at the SAME derived
  /// seed after an exponential backoff; only after the last attempt fails is
  /// it reported as "failed". Other jobs are never affected.
  int max_attempts = 1;
  /// Sleep before retry k is backoff_initial_s * 2^(k-1) seconds.
  double backoff_initial_s = 0.5;
  /// Per-job wall-clock budget in seconds; 0 disables the watchdog. An
  /// overrunning simulation is cancelled cooperatively (SimConfig::cancel is
  /// checked at the sim's safe boundaries) and counts as a failed attempt.
  double job_timeout_s = 0;
  /// Batch-level resume: when non-empty, a job whose marker file
  /// "<result_dir>/job<index>.done" exists is skipped with status "cached"
  /// (excluded from aggregates), and every successful job writes its marker
  /// on completion. Re-running an interrupted batch completes only the
  /// missing jobs.
  std::string result_dir;
  /// Test hook: replaces sim::run_experiment as the job body (the fault
  /// tolerance machinery around it stays identical). Null = the real sim.
  std::function<sim::SimResult(const sim::ExperimentSpec&,
                               const std::string& mode)>
      run_fn;
};

/// Per-job execution record: how the job ended, how many attempts it took,
/// and the last error when it failed. Reported alongside the SimResult in
/// BatchResult and the JSON "runs" rows.
struct JobOutcome {
  std::string status = "ok";  ///< "ok" | "failed" | "cached"
  int attempts = 0;
  std::string error;  ///< last exception message when status == "failed"
  /// Host-side cost of the job (every attempt, including retries/backoff).
  /// Wall clock varies run to run; it is emitted under the JSON row's
  /// "host" object so deterministic tooling can strip it.
  double wall_clock_s = 0;
  /// Process-wide peak resident set (getrusage ru_maxrss) observed when the
  /// job finished — an upper bound on the job's own footprint when jobs
  /// share the process.
  std::uint64_t peak_rss_bytes = 0;
  bool ok() const { return status == "ok"; }
};

/// Cross-replication statistics for one flow: the per-seed mean delays are
/// the samples; the confidence interval is Student-t at 95%.
struct FlowAggregate {
  std::string src, dst;
  double offered_bps = 0;
  std::size_t replications = 0;
  double mean_delay_s = 0;
  double stddev_delay_s = 0;
  double ci95_delay_s = 0;  ///< half-width of the 95% CI of the mean
};

/// The outcome of a replicated batch, in job-index order.
struct BatchResult {
  std::string mode;
  std::uint64_t base_seed = 0;
  int jobs = 1;
  std::vector<sim::SimResult> runs;  ///< by job index (== replication index)
  /// By job index: failed/cached jobs keep a default SimResult in `runs`
  /// and are excluded from `flows`, `avg_delay_s` and `metrics`.
  std::vector<JobOutcome> outcomes;
  std::vector<FlowAggregate> flows;  ///< cross-seed per-flow statistics
  OnlineStats avg_delay_s;           ///< per-run network averages
  /// Per-run metric registries merged in job order — counters add,
  /// histograms merge bucketwise — so the result is identical for any
  /// worker count. Empty unless the runs carried telemetry.
  obs::MetricRegistry metrics;
  /// Profiler + convergence reports merged in job order (tracks matched by
  /// label; spans concatenated, stats recomputed). Present iff at least one
  /// successful run enabled SimConfig::prof.
  std::optional<obs::ProfReport> prof;
  std::optional<obs::ConvergenceReport> convergence;
};

/// Per-flow aggregation across runs that share one flow set (samples are
/// collected into util/stats.h reservoirs, one per flow). Runs with no
/// flows — failed or cached jobs — are skipped.
std::vector<FlowAggregate> aggregate_flows(
    const std::vector<sim::SimResult>& runs);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(Options options = {});

  /// Runs every job (job i simulates with seed derive_seed(base_seed, i))
  /// and returns the results in job order — identical for any jobs count.
  /// A job that throws (after Options::max_attempts tries) or overruns the
  /// watchdog leaves a default SimResult and a "failed" outcome; it never
  /// tears down the batch. `outcomes`, when non-null, receives one
  /// JobOutcome per job.
  std::vector<sim::SimResult> run(const std::vector<Job>& jobs,
                                  std::vector<JobOutcome>* outcomes = nullptr);

  /// Replicates one experiment `replications` times under derived seeds and
  /// aggregates the per-flow delays.
  BatchResult run_replicated(const sim::ExperimentSpec& spec,
                             const std::string& mode, int replications);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Serializes a batch as JSON. `name` labels the experiment (topology or
/// scenario file). Schema documented in docs/RUNNER.md.
void write_results_json(std::ostream& os, const BatchResult& batch,
                        const std::string& name);

}  // namespace mdr::runner
