#include "runner/pool.h"

#include <algorithm>
#include <utility>

namespace mdr::runner {

Pool::Pool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void Pool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void Pool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void Pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down with nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    // Last-resort backstop: an exception escaping a worker thread would hit
    // std::terminate and kill every other job in the batch. Tasks that care
    // about the error (ExperimentRunner) catch and record it themselves;
    // anything that still escapes is swallowed here so the pool survives
    // and the in-flight bookkeeping stays correct.
    try {
      task();
    } catch (...) {
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace mdr::runner
