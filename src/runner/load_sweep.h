// Load-sweep driver: finds a protocol's stability frontier.
//
// A sweep scales every flow's offered rate by a common multiplier and runs
// the experiment once per probe under a fixed seed, asking the in-sim
// StabilityMonitor (sim/monitor.h) for the verdict. A coarse grid over
// [lo, hi] brackets the blow-up point, then bisection sharpens the bracket:
// `critical` is the midpoint of the final (stable, unstable) pair, the
// measured stability margin of the scheme under that workload.
//
// OPT is special-cased: when Gallager's flow-level problem is infeasible at
// a multiplier (offered load exceeds some min-cut), the point is unstable
// by definition (margin -1) without running the packet simulator.
//
// Probes run sequentially under one seed, so a sweep is deterministic:
// same spec + same options => the same probe sequence and verdicts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment_spec.h"

namespace mdr::runner {

struct SweepOptions {
  double lo = 0.5;        ///< smallest rate multiplier probed
  double hi = 2.0;        ///< largest rate multiplier probed
  int steps = 5;          ///< grid probes across [lo, hi] (>= 1)
  int bisect_iters = 4;   ///< bracket-halving probes after the grid
};

/// One probe of the sweep, in probe order (grid first, then bisection).
struct SweepPoint {
  double multiplier = 1.0;
  bool unstable = false;
  double margin = 1.0;               ///< StabilityReport::margin (-1 for
                                     ///  infeasible OPT)
  double max_queue_slope_bps = 0;
  double avg_delay_s = 0;
  std::uint64_t delivered = 0;
  std::uint64_t forwarding_loops = 0;  ///< from the invariant monitor, if on
  std::uint64_t accounting_leaks = 0;
  bool opt_infeasible = false;
};

struct SweepResult {
  std::vector<SweepPoint> points;  ///< every probe, in execution order
  double stable_high = 0;    ///< largest multiplier judged stable (0: none)
  double unstable_low = 0;   ///< smallest multiplier judged unstable (0: none)
  double critical = 0;       ///< frontier estimate; 0 when unbracketed
  /// True when sorting probes by multiplier yields all stable verdicts
  /// before all unstable ones — the sanity property a well-behaved
  /// protocol must show along a load sweep.
  bool monotone = true;
};

/// Runs the sweep for `mode` ("mp" | "sp" | "opt"). If the base spec leaves
/// the stability monitor off (stability.interval == 0) the sweep enables it
/// with defaults — a sweep without a verdict source is meaningless. When
/// `jsonl` is non-null, one JSON object per probe is streamed as it
/// completes (sweep_point_json + '\n').
SweepResult run_load_sweep(const sim::ExperimentSpec& base,
                           const std::string& mode,
                           const SweepOptions& options,
                           std::ostream* jsonl = nullptr);

/// One probe as a single-line JSON object (%.17g doubles, fixed key order).
std::string sweep_point_json(const SweepPoint& point);

}  // namespace mdr::runner
