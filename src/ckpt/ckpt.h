// Checkpoint format primitives: a versioned, checksummed binary container
// for simulation snapshots (docs/CHECKPOINT.md).
//
// Layout of a checkpoint file:
//
//   u32  magic   "MDRK"
//   u32  format version (kVersion; a reader rejects any other value)
//   u64  payload length in bytes
//   ...  payload (the serialized simulation state)
//   u32  FNV-1a checksum of the payload (proto/checksum.h)
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern, so a round trip is bit-exact. Writer/Reader are dumb byte
// streams — every subsystem serializes its own state through them with
// save(Writer&)/load(Reader&) member functions, and NetworkSim
// (sim/network_sim.cc) owns the overall save_checkpoint()/
// restore_checkpoint() orchestration.
//
// Failure policy: loading NEVER guesses. A bad magic, unknown version,
// checksum mismatch, truncated stream, or section-marker mismatch throws
// ckpt::Error with a description; callers surface it and fall back to a
// fresh run. Writing is atomic: the payload lands in "<path>.tmp" and is
// renamed over the target, so a crash mid-write can never leave a
// half-written file where a resumable checkpoint should be.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "proto/checksum.h"

namespace mdr::ckpt {

class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kMagic = 0x4b52444du;  // "MDRK" little-endian
inline constexpr std::uint32_t kVersion = 2;  // v2: incremental RouterTables

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
  }
  /// Section anchor: a labeled guard the reader must match exactly. Cheap
  /// insurance that writer and reader walk the state in the same order.
  void mark(std::uint32_t label) { u32(0x5ec70000u | (label & 0xffffu)); }

  const std::vector<std::uint8_t>& payload() const { return buf_; }

  /// Writes magic/version/length/payload/checksum atomically (tmp + rename).
  void write_file(const std::string& path) const {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw Error("cannot open " + tmp + " for writing");
      const auto put32 = [&out](std::uint32_t v) {
        char b[4];
        for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
        out.write(b, 4);
      };
      const auto put64 = [&out](std::uint64_t v) {
        char b[8];
        for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
        out.write(b, 8);
      };
      put32(kMagic);
      put32(kVersion);
      put64(buf_.size());
      out.write(reinterpret_cast<const char*>(buf_.data()),
                static_cast<std::streamsize>(buf_.size()));
      put32(proto::checksum32(
          std::span<const std::uint8_t>(buf_.data(), buf_.size())));
      if (!out) throw Error("write failed for " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw Error("cannot rename " + tmp + " to " + path);
    }
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::vector<std::uint8_t> payload)
      : buf_(std::move(payload)) {}

  /// Parses and verifies a checkpoint file; throws Error on a bad magic,
  /// version skew, truncation, or checksum mismatch.
  static Reader from_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("cannot open checkpoint " + path);
    std::vector<std::uint8_t> raw((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    if (raw.size() < 20) throw Error("checkpoint " + path + " is truncated");
    const auto get32 = [&raw](std::size_t at) {
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(raw[at + i]) << (8 * i);
      return v;
    };
    const auto get64 = [&raw](std::size_t at) {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(raw[at + i]) << (8 * i);
      return v;
    };
    if (get32(0) != kMagic) throw Error("checkpoint " + path + ": bad magic");
    if (get32(4) != kVersion) {
      throw Error("checkpoint " + path + ": format version " +
                  std::to_string(get32(4)) + " (expected " +
                  std::to_string(kVersion) + ")");
    }
    const std::uint64_t len = get64(8);
    if (raw.size() != 16 + len + 4) {
      throw Error("checkpoint " + path + " is truncated or has trailing data");
    }
    std::vector<std::uint8_t> payload(raw.begin() + 16,
                                      raw.begin() + 16 + static_cast<std::ptrdiff_t>(len));
    const std::uint32_t want = get32(16 + static_cast<std::size_t>(len));
    const std::uint32_t got = proto::checksum32(
        std::span<const std::uint8_t>(payload.data(), payload.size()));
    if (want != got) throw Error("checkpoint " + path + ": checksum mismatch");
    return Reader(std::move(payload));
  }

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  bool b() { return u8() != 0; }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint64_t n = u64();
    need(n);
    std::vector<std::uint8_t> v(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return v;
  }
  void expect_mark(std::uint32_t label) {
    const std::uint32_t got = u32();
    const std::uint32_t want = 0x5ec70000u | (label & 0xffffu);
    if (got != want) {
      throw Error("checkpoint section marker mismatch (want " +
                  std::to_string(want) + ", got " + std::to_string(got) + ")");
    }
  }
  bool at_end() const { return pos_ == buf_.size(); }
  void expect_end() const {
    if (!at_end()) throw Error("checkpoint has trailing bytes");
  }

 private:
  void need(std::uint64_t n) {
    if (pos_ + n > buf_.size()) throw Error("checkpoint payload truncated");
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace mdr::ckpt
