// Traffic allocation heuristics over a successor set (paper Section 4.2,
// Figs. 6-7).
//
// IH ("initial heuristic") distributes traffic over a freshly computed
// successor set purely from the marginal distances through each successor:
//
//     phi_k = (1 - d_k / sum_m d_m) / (|S| - 1)          (|S| > 1)
//
// so a successor with a larger marginal distance receives a smaller share.
//
// AH ("adjustment heuristic") runs every Ts seconds between routing-path
// updates and incrementally moves traffic from successors with large
// marginal delay to the best successor, proportionally to how much worse
// each link is:
//
//     a_k   = d_k - min_m d_m
//     delta = min { phi_k / a_k : k in S, a_k != 0, phi_k > 0 }
//     phi_k   -= delta * a_k          (k != k0)
//     phi_k0  += sum of removed mass
//
// Both preserve Property 1 (non-negative, sum to one) at every instant.
#pragma once

#include <span>
#include <vector>

#include "graph/topology.h"

namespace mdr::core {

/// One successor with its marginal distance d_k = D_jk + l_k, where D_jk is
/// the (long-term) distance through neighbor k and l_k the *short-term*
/// measured cost of the adjacent link.
struct SuccessorMetric {
  graph::NodeId neighbor = graph::kInvalidNode;
  double distance = 0;  ///< must be finite and > 0
};

/// IH (Fig. 6). Returns phi aligned with `metrics`; empty input yields {}.
std::vector<double> initial_allocation(std::span<const SuccessorMetric> metrics);

/// AH (Fig. 7). Adjusts `phi` (aligned with `metrics`) in place.
///
/// `damping` scales the paper's full shift (1.0 reproduces Fig. 7; smaller
/// values move proportionally less per invocation — an ablation knob).
///
/// Returns the total phi mass moved onto the best successor (0 when the
/// allocation was already balanced or trivial) — the natural magnitude for
/// telemetry of AH activity.
double adjust_allocation(std::span<const SuccessorMetric> metrics,
                         std::span<double> phi, double damping = 1.0);

/// Single-path allocation: everything on the successor with the least
/// marginal distance (ties to the lower neighbor id). Used by the SP
/// baseline, which the paper realizes exactly this way.
std::vector<double> best_successor_allocation(
    std::span<const SuccessorMetric> metrics);

}  // namespace mdr::core
