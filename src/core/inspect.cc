#include "core/inspect.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mdr::core {

using graph::NodeId;

namespace {

std::string fmt_cost(graph::Cost c) {
  if (c == graph::kInfCost) return "inf";
  std::ostringstream out;
  out << std::fixed << std::setprecision(3) << c * 1e3 << "ms";
  return out.str();
}

}  // namespace

void dump_router_state(std::ostream& os, const MpRouter& router,
                       const graph::Topology& topo) {
  const auto& mpda = router.mpda();
  const NodeId self = router.self();
  os << "router " << topo.name(self) << " ("
     << (mpda.passive() ? "PASSIVE" : "ACTIVE") << ", "
     << mpda.acks_pending() << " acks pending)\n";
  os << "  " << std::left << std::setw(12) << "dest" << std::setw(12) << "D"
     << std::setw(12) << "FD"
     << "successors (D_jk, phi)\n";
  for (NodeId j = 0; j < static_cast<NodeId>(topo.num_nodes()); ++j) {
    if (j == self) continue;
    os << "  " << std::left << std::setw(12) << topo.name(j) << std::setw(12)
       << fmt_cost(mpda.distance(j)) << std::setw(12)
       << fmt_cost(mpda.feasible_distance(j));
    const auto entry = router.forwarding(j);
    if (entry.empty()) {
      os << "(no route)";
    } else {
      for (const auto& choice : entry) {
        os << topo.name(choice.neighbor) << "("
           << fmt_cost(mpda.distance_via(j, choice.neighbor)) << ", "
           << std::setprecision(2) << choice.weight << ") ";
      }
    }
    os << "\n";
  }
}

void successor_graph_dot(std::ostream& os, const graph::Topology& topo,
                         std::span<const MpRouter* const> routers,
                         NodeId dest) {
  os << "digraph SG_" << topo.name(dest) << " {\n";
  os << "  rankdir=LR;\n";
  os << "  label=\"successor graph toward " << topo.name(dest) << "\";\n";
  for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
    const auto& mpda = routers[i]->mpda();
    os << "  \"" << topo.name(i) << "\" [label=\"" << topo.name(i) << "\\nFD "
       << fmt_cost(i == dest ? 0.0 : mpda.feasible_distance(dest)) << "\""
       << (i == dest ? ", shape=doublecircle" : "") << "];\n";
  }
  for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
    if (i == dest) continue;
    for (const auto& choice : routers[i]->forwarding(dest)) {
      os << "  \"" << topo.name(i) << "\" -> \"" << topo.name(choice.neighbor)
         << "\" [label=\"" << std::fixed << std::setprecision(2)
         << choice.weight << "\"];\n";
    }
  }
  os << "}\n";
}

}  // namespace mdr::core
