// Diagnostics: human-readable and Graphviz views of routing state.
//
// An operator debugging a multipath deployment needs to see, per router,
// the distances/feasible distances/successor sets MPDA derived, and, per
// destination, the global successor DAG (the paper's routing graph SG_j).
// These helpers render both; the DOT output drops straight into graphviz:
//
//   ./examples/routing_tables | dot -Tsvg > sg.svg
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/mp_router.h"
#include "core/mpda.h"
#include "graph/topology.h"

namespace mdr::core {

/// Per-destination routing table of one router: D, FD, successor set and
/// the current phi split. Node names taken from `topo`.
void dump_router_state(std::ostream& os, const MpRouter& router,
                       const graph::Topology& topo);

/// The global successor graph SG_dest as a Graphviz digraph: solid edges are
/// successor relations labeled with phi where the router carries weights;
/// every node is annotated with its feasible distance.
void successor_graph_dot(std::ostream& os, const graph::Topology& topo,
                         std::span<const MpRouter* const> routers,
                         graph::NodeId dest);

}  // namespace mdr::core
