// MpRouter — the complete near-optimum-delay router of Section 4: MPDA for
// loop-free multipath computation plus the IH/AH heuristics for local
// traffic distribution, glued to the two-timescale cost feeds.
//
// Division of labour (paper Section 3): MPDA consumes *long-term* link costs
// via LSUs and produces, per destination, the successor set S_j and the
// distances D_jk through each successor. MpRouter turns those into routing
// parameters phi:
//
//   * whenever S_j changes (a long-term routing-path update), traffic is
//     freshly distributed with IH;
//   * every Ts seconds (update_short_term_costs), AH incrementally shifts
//     traffic toward the successor with the least D_jk + l_k using purely
//     local short-term costs — no communication;
//   * in single-path mode (the paper's SP baseline) phi is instead 1.0 on
//     the best successor.
//
// The embedding environment (simulator or test harness) owns the timers and
// the cost estimators; MpRouter is pure routing logic.
#pragma once

#include <map>
#include <vector>

#include "core/allocation.h"
#include "core/mpda.h"
#include "util/rng.h"

namespace mdr::core {

struct MpRouterOptions {
  bool single_path = false;  ///< SP baseline: best successor only
  /// AH shift scale. 1.0 moves the full proportional shift of Fig. 7 as we
  /// read it; with Ts-delayed cost feedback that overshoots and oscillates
  /// around the balance point (~15% above OPT on CAIRN). 0.5 — consistent
  /// with a half factor in the paper's (OCR-garbled) step-4 expression —
  /// lands within the paper's 5% OPT envelope. bench/ablation_allocation
  /// quantifies the difference.
  double ah_damping = 0.5;
  /// LSU origination pacing (off by default — see core/mpda.h).
  LsuPacing pacing{};
};

/// One next-hop choice with its routing parameter (phi).
struct ForwardingChoice {
  graph::NodeId neighbor = graph::kInvalidNode;
  double weight = 0;
};

class MpRouter {
 public:
  MpRouter(graph::NodeId self, std::size_t num_nodes, proto::LsuSink& sink,
           MpRouterOptions options = MpRouterOptions{});

  // --- control-plane events (forwarded to MPDA, allocations refreshed) ----

  void on_link_up(graph::NodeId k, graph::Cost long_term_cost);
  /// Clock-aware link up: with pacing enabled, a re-announcement inside the
  /// link's hold-down is deferred to pacing_tick() (and cancelled by a down
  /// meanwhile); see MpdaProcess::on_link_up_at.
  void on_link_up_at(graph::NodeId k, graph::Cost long_term_cost, Time now);
  void on_link_down(graph::NodeId k);
  /// Tl tick outcome for one adjacent link: a new long-term cost worth
  /// advertising. Triggers an LSU flood via MPDA — immediately, or (with
  /// pacing enabled and the link's hold-down open) coalesced until
  /// pacing_tick(). `now` only matters to pacing; the default keeps
  /// un-timed harness call sites bit-identical.
  void on_long_term_cost(graph::NodeId k, graph::Cost cost, Time now = 0);
  void on_lsu(const proto::LsuMessage& msg);

  /// Pacing tick: flush expired hold-downs (see MpdaProcess::pacing_tick).
  void pacing_tick(Time now);

  /// Alias so MpRouter exposes the same event-method names as the raw
  /// protocol processes (harnesses drive either interchangeably).
  void on_link_cost_change(graph::NodeId k, graph::Cost cost) {
    on_long_term_cost(k, cost);
  }

  /// Ts tick: fresh short-term costs for the adjacent links (absent
  /// neighbors keep their previous value). Runs AH for every destination
  /// (IH where the successor set changed since the last allocation).
  void update_short_term_costs(const std::map<graph::NodeId, double>& costs);

  /// Retransmission tick: resend unacknowledged LSUs (lossy transports).
  void retransmit_pending() { mpda_.retransmit_unacked(); }

  /// Crash semantics: wipe ALL routing state — MPDA tables, short-term cost
  /// estimates, forwarding table, WRR counters — as if the router process
  /// was restarted from scratch. Adjacencies must be re-announced afterwards
  /// (on_link_up) once the neighbor protocol re-establishes them.
  void reset();

  // --- forwarding ----------------------------------------------------------

  /// Routing parameters toward `dest`; empty when there is no route.
  std::span<const ForwardingChoice> forwarding(graph::NodeId dest) const {
    return table_[dest];
  }

  /// Weighted-random next hop realizing phi; kInvalidNode if no route.
  graph::NodeId pick_next_hop(graph::NodeId dest, Rng& rng) const;

  /// Deterministic smooth weighted-round-robin realization of phi (credit
  /// counters): same long-run fractions, lower short-term variance — the
  /// realization an actual forwarding plane would use. kInvalidNode if no
  /// route.
  graph::NodeId pick_next_hop_wrr(graph::NodeId dest);

  const MpdaProcess& mpda() const { return mpda_; }
  graph::NodeId self() const { return mpda_.self(); }

  /// Attaches a flight-recorder probe (IH/AH reallocation events here;
  /// forwarded to MPDA for LSU/FD/successor events). Off by default.
  void set_probe(const obs::Probe& probe) {
    probe_ = probe;
    mpda_.set_probe(probe);
  }

  /// Attaches the wall-clock profiler (IH/AH allocation sections here;
  /// forwarded to MPDA for the protocol-phase sections). Off by default.
  void set_prof(obs::Profiler* p) {
    prof_ = p;
    mpda_.set_prof(p);
  }

  /// Attaches the convergence span recorder (forwarded to MPDA, which owns
  /// every episode boundary). Off by default.
  void set_spans(obs::SpanRecorder* s, const Time* clock) {
    mpda_.set_spans(s, clock);
  }

  void save(ckpt::Writer& w) const {
    mpda_.save(w);
    w.u64(short_costs_.size());
    for (const auto& [k, c] : short_costs_) {
      w.i64(k);
      w.f64(c);
    }
    w.u64(table_.size());
    for (const auto& choices : table_) {
      w.u64(choices.size());
      for (const ForwardingChoice& c : choices) {
        w.i64(c.neighbor);
        w.f64(c.weight);
      }
    }
    w.u64(allocated_version_.size());
    for (std::uint64_t v : allocated_version_) w.u64(v);
    w.u64(wrr_credits_.size());
    for (const auto& credits : wrr_credits_) {
      w.u64(credits.size());
      for (double c : credits) w.f64(c);
    }
  }
  void load(ckpt::Reader& r) {
    mpda_.load(r);
    short_costs_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = static_cast<graph::NodeId>(r.i64());
      short_costs_[k] = r.f64();
    }
    table_.resize(r.u64());
    for (auto& choices : table_) {
      choices.resize(r.u64());
      for (ForwardingChoice& c : choices) {
        c.neighbor = static_cast<graph::NodeId>(r.i64());
        c.weight = r.f64();
      }
    }
    allocated_version_.resize(r.u64());
    for (std::uint64_t& v : allocated_version_) v = r.u64();
    wrr_credits_.resize(r.u64());
    for (auto& credits : wrr_credits_) {
      credits.resize(r.u64());
      for (double& c : credits) c = r.f64();
    }
  }

 private:
  /// Rebuilds phi for one destination. `allow_adjust` selects AH when the
  /// successor set is unchanged (Ts tick) vs. keep-phi (protocol event).
  void refresh(graph::NodeId dest, bool allow_adjust);
  void refresh_changed_destinations();
  double short_cost(graph::NodeId k) const;

  MpdaProcess mpda_;
  MpRouterOptions options_;
  std::map<graph::NodeId, double> short_costs_;
  std::vector<std::vector<ForwardingChoice>> table_;
  std::vector<std::uint64_t> allocated_version_;
  std::vector<std::vector<double>> wrr_credits_;  // parallel to table_
  obs::Probe probe_;
  obs::Profiler* prof_ = nullptr;
};

}  // namespace mdr::core
