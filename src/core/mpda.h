// MPDA — the Multiple-path Partial-topology Dissemination Algorithm
// (paper Fig. 4), the first link-state routing algorithm that provides
// multiple paths of unequal cost to each destination that are loop-free at
// every instant.
//
// MPDA runs PDA's NTU/MTU machinery but synchronizes LSU exchanges with
// single-hop acknowledgments: a router that floods an LSU enters ACTIVE
// state and defers further main-table updates until every neighbor has
// acknowledged. Feasible distances FD_j bridge the inconsistency window:
//
//   * while PASSIVE, every MTU lowers FD_j to min(FD_j, D_j);
//   * at an ACTIVE->PASSIVE transition, FD_j := min(D_j before the deferred
//     MTU, D_j after) — the pre-MTU value is exactly what all neighbors have
//     acknowledged, so FD_j never exceeds what any neighbor believes.
//
// Successor sets S_j = { k : D_jk < FD_j } (the LFI condition, Eq. 17) are
// refreshed on every event and are loop-free at every instant
// (paper Theorem 3); distances still converge to shortest paths
// (paper Theorem 4).
//
// Transport model: the paper assumes a reliable, in-order neighbor
// protocol. MPDA here additionally sequence-numbers every entries-LSU and
// keeps a per-neighbor retransmission buffer (retransmit_unacked()), so the
// synchronization also survives transports that can lose messages — LSUs
// dropped during adjacency races (a neighbor that has not yet detected us
// ignores our LSU without acking) or silent link failures are simply
// resent; receivers filter duplicates by sequence number and re-ack.
// proto/hello.h provides the matching adjacency/failure-detection layer.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "graph/topology.h"
#include "obs/prof.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "proto/lsu.h"
#include "proto/pda.h"
#include "util/time.h"

namespace mdr::core {

/// LSU origination pacing: a per-link MinLSInterval-style hold-down with
/// Trickle-like adaptive backoff. While a link's hold-down is open,
/// back-to-back long-term cost changes for it are coalesced — only the
/// latest cost is applied (and flooded) when the window expires. A window
/// that had to coalesce doubles the next hold-down (up to `max_interval`);
/// a window that stayed quiet snaps it back to `min_interval`. Deferring
/// the *whole* cost-change event (not just its flood) is what keeps MPDA's
/// invariants intact: to the protocol a paced change is simply a cost that
/// changed a little later.
///
/// The hold-down also paces link *re-announcements* (the BGP-MRAI /
/// OSPF-MinLSInterval asymmetry): an up arriving inside the window is
/// deferred, and a down meanwhile cancels it, collapsing a whole bounce to
/// nothing on the wire. Withdrawals (on_link_down) are never paced — bad
/// news must flood immediately.
struct LsuPacing {
  bool enabled = false;
  Duration min_interval = 1.0;  ///< hold-down after an origination (s)
  Duration max_interval = 8.0;  ///< backoff ceiling while unstable (s)
};

class MpdaProcess final : public proto::RoutingProcess {
 public:
  enum class Mode { kPassive, kActive };

  MpdaProcess(graph::NodeId self, std::size_t num_nodes, proto::LsuSink& sink,
              LsuPacing pacing = {});

  // --- protocol events -----------------------------------------------------

  void on_link_up(graph::NodeId k, graph::Cost cost) override;
  void on_link_down(graph::NodeId k) override;
  void on_link_cost_change(graph::NodeId k, graph::Cost cost) override;
  void on_lsu(const proto::LsuMessage& msg) override;

  /// Clock-aware cost change: applies immediately when pacing is off or the
  /// link's hold-down has expired, otherwise coalesces into the pending slot
  /// for pacing_tick() to flush. The un-timed override above is equivalent
  /// to `now = 0` (pacing effectively bypassed), preserving every existing
  /// call site bit-for-bit.
  void on_link_cost_change_at(graph::NodeId k, graph::Cost cost, Time now);

  /// Clock-aware link up: immediate when pacing is off or the link's
  /// hold-down has expired, otherwise the announcement is deferred until
  /// pacing_tick() — and silently dropped if the link goes back down first.
  void on_link_up_at(graph::NodeId k, graph::Cost cost, Time now);

  /// Flushes expired hold-downs (flooding the coalesced cost) and performs
  /// Trickle bookkeeping: double the interval after a busy window, snap back
  /// to min_interval after a quiet one. Drive from a periodic timer of
  /// roughly `min_interval` when pacing is enabled; no-op otherwise.
  void pacing_tick(Time now);

  // --- routing state -------------------------------------------------------

  /// S_j: successor set toward `dest`, ascending neighbor ids.
  const std::vector<graph::NodeId>& successors(graph::NodeId dest) const {
    return successors_[dest];
  }

  /// Bumped whenever S_dest changes; lets the flow-allocation layer detect
  /// "successor set recomputed" (paper: re-run IH) without diffing.
  std::uint64_t successor_version(graph::NodeId dest) const {
    return successor_versions_[dest];
  }

  graph::Cost feasible_distance(graph::NodeId dest) const { return fd_[dest]; }
  graph::Cost distance(graph::NodeId dest) const {
    return tables_.distance(dest);
  }
  graph::Cost distance_via(graph::NodeId dest, graph::NodeId k) const {
    return tables_.distance_via(dest, k);
  }

  Mode mode() const { return mode_; }
  bool passive() const { return mode_ == Mode::kPassive; }

  /// Resends unacknowledged entries-LSUs (reliable flooding). Drive this
  /// from a periodic timer when the transport can lose messages (silent
  /// link failures, adjacency races); it is a no-op when nothing is
  /// outstanding. Duplicates are detected by sequence number at the
  /// receiver and re-acknowledged without reprocessing.
  ///
  /// Two throttles bound the retransmission traffic on badly lossy links:
  /// per neighbor at most `kRetransmitWindow` LSUs are resent per tick
  /// (oldest ready first — in-order resend keeps the receiver's duplicate
  /// filter effective; only actual sends consume window slots, so a
  /// head-of-line LSU in deep backoff cannot starve ready ones behind it),
  /// and each LSU backs off exponentially (resent on the 1st, 2nd, 4th,
  /// 8th, ... eligible tick after first transmission, capped at
  /// kRetransmitBackoffCap).
  void retransmit_unacked();

  /// The router crashed and rebooted: discard ALL protocol state — topology
  /// tables, feasible distances, sequence numbers, retransmission buffers,
  /// successor sets — as a real restart would. Successor versions are
  /// bumped (not zeroed) so downstream consumers observe the wipe. The host
  /// re-announces adjacencies afterwards via on_link_up().
  void reset();

  const proto::RouterTables& tables() const { return tables_; }
  graph::NodeId self() const { return tables_.self(); }

  std::size_t messages_sent() const { return messages_sent_; }
  std::size_t acks_pending() const;

  // --- control-overhead breakdown (measurement counters; like
  // messages_sent_ they survive reset() so run statistics stay conserved) --

  /// First-transmission entries-LSUs (floods + full syncs).
  std::uint64_t lsus_originated() const { return lsus_originated_; }
  /// Resends out of the retransmission buffer.
  std::uint64_t lsus_retransmitted() const { return lsus_retransmitted_; }
  /// Cost-change events coalesced away by pacing (each would have been an
  /// origination flood without the hold-down).
  std::uint64_t lsus_suppressed() const { return lsus_suppressed_; }
  /// Pure ack messages (no entries payload).
  std::uint64_t acks_sent() const { return acks_sent_; }

  const LsuPacing& pacing() const { return pacing_; }

  /// Attaches a flight-recorder probe (LSU originate/receive, FD and
  /// successor-set changes). Disabled by default; one branch per event when
  /// off, so default runs are unaffected.
  void set_probe(const obs::Probe& probe) { probe_ = probe; }

  /// Attaches the wall-clock profiler (table update / successor recompute /
  /// flood-out sections). Null (default) = off, one branch per scope.
  void set_prof(obs::Profiler* p) { prof_ = p; }

  /// Attaches the convergence span recorder; `clock` supplies sim time
  /// (EventQueue::now_ptr). Every protocol entry point then opens a
  /// processing episode and records sends / successor changes into it.
  void set_spans(obs::SpanRecorder* s, const Time* clock) {
    spans_ = s;
    span_clock_ = clock;
  }

  /// Oldest outstanding LSUs eligible for retransmission, per neighbor.
  static constexpr std::size_t kRetransmitWindow = 8;
  /// Maximum gap (in retransmit ticks) between successive resends.
  static constexpr std::uint32_t kRetransmitBackoffCap = 32;

  /// Checkpoints the complete protocol state (tables, mode, sequence
  /// numbers, retransmission buffers, FD/successor state, pacing windows and
  /// the measurement counters). Buffered LsuMessages reuse the wire codec
  /// (proto::encode/decode), so the format has one source of truth.
  void save(ckpt::Writer& w) const {
    tables_.save(w);
    w.u8(static_cast<std::uint8_t>(mode_));
    w.u32(next_seq_);
    w.u64(unacked_.size());
    for (const auto& [k, by_seq] : unacked_) {
      w.i64(k);
      w.u64(by_seq.size());
      for (const auto& [seq, pending] : by_seq) {
        w.u32(seq);
        w.bytes(proto::encode(pending.msg));
        w.u32(pending.attempts);
        w.u32(pending.cooldown);
      }
    }
    w.u64(last_seen_seq_.size());
    for (const auto& [k, seq] : last_seen_seq_) {
      w.i64(k);
      w.u32(seq);
    }
    w.u64(full_sync_.size());
    for (graph::NodeId k : full_sync_) w.i64(k);
    w.u64(fd_.size());
    for (graph::Cost c : fd_) w.f64(c);
    w.u64(successors_.size());
    for (const auto& succ : successors_) {
      w.u64(succ.size());
      for (graph::NodeId k : succ) w.i64(k);
    }
    w.u64(successor_versions_.size());
    for (std::uint64_t v : successor_versions_) w.u64(v);
    w.u64(messages_sent_);
    w.u64(pace_.size());
    for (const auto& [k, pace] : pace_) {
      w.i64(k);
      w.f64(pace.interval);
      w.f64(pace.next_allowed);
      w.b(pace.has_pending);
      w.b(pace.pending_up);
      w.f64(pace.pending);
    }
    w.u64(lsus_originated_);
    w.u64(lsus_retransmitted_);
    w.u64(lsus_suppressed_);
    w.u64(acks_sent_);
  }
  void load(ckpt::Reader& r) {
    tables_.load(r);
    mode_ = static_cast<Mode>(r.u8());
    next_seq_ = r.u32();
    unacked_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = static_cast<graph::NodeId>(r.i64());
      auto& by_seq = unacked_[k];
      const std::uint64_t m = r.u64();
      for (std::uint64_t j = 0; j < m; ++j) {
        const std::uint32_t seq = r.u32();
        Pending& pending = by_seq[seq];
        auto msg = proto::decode(r.bytes());
        if (!msg) throw ckpt::Error("bad buffered LSU in checkpoint");
        pending.msg = std::move(*msg);
        pending.attempts = r.u32();
        pending.cooldown = r.u32();
      }
    }
    last_seen_seq_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = static_cast<graph::NodeId>(r.i64());
      last_seen_seq_[k] = r.u32();
    }
    full_sync_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      full_sync_.insert(static_cast<graph::NodeId>(r.i64()));
    }
    fd_.resize(r.u64());
    for (graph::Cost& c : fd_) c = r.f64();
    successors_.resize(r.u64());
    for (auto& succ : successors_) {
      succ.resize(r.u64());
      for (graph::NodeId& k : succ) k = static_cast<graph::NodeId>(r.i64());
    }
    successor_versions_.resize(r.u64());
    for (std::uint64_t& v : successor_versions_) v = r.u64();
    messages_sent_ = r.u64();
    pace_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = static_cast<graph::NodeId>(r.i64());
      Pace& pace = pace_[k];
      pace.interval = r.f64();
      pace.next_allowed = r.f64();
      pace.has_pending = r.b();
      pace.pending_up = r.b();
      pace.pending = r.f64();
    }
    lsus_originated_ = r.u64();
    lsus_retransmitted_ = r.u64();
    lsus_suppressed_ = r.u64();
    acks_sent_ = r.u64();
    // Successor-dirty marks are always fully consumed by the
    // recompute_successors() at the end of the event that made them, and
    // checkpoints land between events — so there is never anything to
    // restore. The loaded successor sets are consistent with the loaded
    // tables/FD by the same argument.
    succ_all_dirty_ = false;
    succ_dirty_.assign(fd_.size(), 0);
    succ_dirty_list_.clear();
  }

 private:
  struct NtuOutcome {
    graph::NodeId ack_to = graph::kInvalidNode;  // entries-LSU to acknowledge
    std::uint32_t ack_seq = 0;                   // its sequence number
  };

  /// One entry of the retransmission buffer.
  struct Pending {
    proto::LsuMessage msg;
    std::uint32_t attempts = 0;  ///< resends so far
    std::uint32_t cooldown = 0;  ///< eligible ticks to skip before resending
  };

  /// Per-link pacing state (exists only while pacing is enabled).
  struct Pace {
    Duration interval;         ///< current hold-down length
    Time next_allowed = 0;     ///< hold-down open until this instant
    bool has_pending = false;  ///< a coalesced change awaits flushing
    bool pending_up = false;   ///< the pending event is an announcement
    graph::Cost pending = 0;   ///< latest coalesced cost
  };

  // Fig. 4 steps 2-8, shared by every event type.
  void after_ntu(const NtuOutcome& outcome);
  void recompute_successors();
  void mark_succ_dirty(graph::NodeId j);
  void send(graph::NodeId k, const proto::LsuMessage& msg);
  Time span_now() const { return span_clock_ != nullptr ? *span_clock_ : 0; }

  proto::RouterTables tables_;
  proto::LsuSink* sink_;
  Mode mode_ = Mode::kPassive;
  std::uint32_t next_seq_ = 1;
  /// Entries-LSUs sent but not yet acknowledged, per neighbor and sequence
  /// number; the retransmission buffer of reliable flooding.
  std::map<graph::NodeId, std::map<std::uint32_t, Pending>> unacked_;
  /// Highest entries-LSU sequence number seen per neighbor (duplicate filter).
  std::map<graph::NodeId, std::uint32_t> last_seen_seq_;
  std::set<graph::NodeId> full_sync_;  // new neighbors owed the full topology
  std::vector<graph::Cost> fd_;
  std::vector<std::vector<graph::NodeId>> successors_;
  std::vector<std::uint64_t> successor_versions_;
  /// Destinations whose S_j inputs (D_jk, FD_j) moved since the last
  /// recompute; succ_all_dirty_ covers neighbor-set changes.
  std::vector<std::uint8_t> succ_dirty_;
  std::vector<graph::NodeId> succ_dirty_list_;
  bool succ_all_dirty_ = true;
  std::size_t messages_sent_ = 0;
  LsuPacing pacing_;
  std::map<graph::NodeId, Pace> pace_;
  std::uint64_t lsus_originated_ = 0;
  std::uint64_t lsus_retransmitted_ = 0;
  std::uint64_t lsus_suppressed_ = 0;
  std::uint64_t acks_sent_ = 0;
  obs::Probe probe_;
  obs::Profiler* prof_ = nullptr;
  obs::SpanRecorder* spans_ = nullptr;
  const Time* span_clock_ = nullptr;
};

}  // namespace mdr::core
