#include "core/mp_router.h"

#include <cassert>
#include <cmath>

namespace mdr::core {

using graph::Cost;
using graph::NodeId;

MpRouter::MpRouter(NodeId self, std::size_t num_nodes, proto::LsuSink& sink,
                   MpRouterOptions options)
    : mpda_(self, num_nodes, sink, options.pacing),
      options_(options),
      table_(num_nodes),
      allocated_version_(num_nodes, 0),
      wrr_credits_(num_nodes) {}

void MpRouter::reset() {
  mpda_.reset();
  short_costs_.clear();
  for (auto& entry : table_) entry.clear();
  for (auto& credits : wrr_credits_) credits.clear();
  // MPDA bumped the version of every destination it wiped; syncing the
  // allocated versions here keeps refresh_changed_destinations() a no-op
  // until real routing state reappears.
  const auto n = static_cast<NodeId>(table_.size());
  for (NodeId dest = 0; dest < n; ++dest) {
    allocated_version_[dest] = mpda_.successor_version(dest);
  }
}

void MpRouter::on_link_up(NodeId k, Cost long_term_cost) {
  mpda_.on_link_up(k, long_term_cost);
  refresh_changed_destinations();
}

void MpRouter::on_link_up_at(NodeId k, Cost long_term_cost, Time now) {
  mpda_.on_link_up_at(k, long_term_cost, now);
  refresh_changed_destinations();
}

void MpRouter::on_link_down(NodeId k) {
  short_costs_.erase(k);
  mpda_.on_link_down(k);
  refresh_changed_destinations();
}

void MpRouter::on_long_term_cost(NodeId k, Cost cost, Time now) {
  mpda_.on_link_cost_change_at(k, cost, now);
  refresh_changed_destinations();
}

void MpRouter::pacing_tick(Time now) {
  mpda_.pacing_tick(now);
  refresh_changed_destinations();
}

void MpRouter::on_lsu(const proto::LsuMessage& msg) {
  mpda_.on_lsu(msg);
  refresh_changed_destinations();
}

void MpRouter::update_short_term_costs(
    const std::map<NodeId, double>& costs) {
  for (const auto& [k, cost] : costs) {
    assert(cost > 0 && std::isfinite(cost));
    short_costs_[k] = cost;
  }
  const auto n = static_cast<NodeId>(table_.size());
  for (NodeId dest = 0; dest < n; ++dest) {
    if (dest == self()) continue;
    refresh(dest, /*allow_adjust=*/true);
  }
}

double MpRouter::short_cost(NodeId k) const {
  const auto it = short_costs_.find(k);
  if (it != short_costs_.end()) return it->second;
  // No Ts measurement yet: fall back to the advertised long-term cost.
  return mpda_.tables().link_cost(k);
}

void MpRouter::refresh(NodeId dest, bool allow_adjust) {
  const auto& succ = mpda_.successors(dest);
  const auto version = mpda_.successor_version(dest);
  auto& entry = table_[dest];

  if (succ.empty()) {
    entry.clear();
    allocated_version_[dest] = version;
    return;
  }

  std::vector<SuccessorMetric> metrics;
  metrics.reserve(succ.size());
  for (const NodeId k : succ) {
    const double d = mpda_.distance_via(dest, k) + short_cost(k);
    assert(std::isfinite(d) && d > 0);
    metrics.push_back(SuccessorMetric{k, d});
  }

  std::vector<double> phi;
  if (options_.single_path) {
    phi = best_successor_allocation(metrics);
  } else if (version != allocated_version_[dest] ||
             entry.size() != succ.size()) {
    // New successor set (long-term route change): fresh distribution (IH).
    obs::ProfScope scope(prof_, obs::ProfSection::kAllocIh);
    phi = initial_allocation(metrics);
    probe_.emit(obs::EventType::kIhAlloc, dest,
                static_cast<double>(succ.size()));
  } else if (allow_adjust) {
    // Ts tick with an unchanged successor set: incremental shift (AH).
    obs::ProfScope scope(prof_, obs::ProfSection::kAllocAh);
    phi.reserve(entry.size());
    for (const auto& choice : entry) phi.push_back(choice.weight);
    const double moved = adjust_allocation(metrics, phi, options_.ah_damping);
    if (moved > 0) probe_.emit(obs::EventType::kAhAlloc, dest, moved);
  } else {
    // Protocol event that did not change S: keep the current phi.
    allocated_version_[dest] = version;
    return;
  }

  entry.resize(succ.size());
  for (std::size_t x = 0; x < succ.size(); ++x) {
    entry[x] = ForwardingChoice{succ[x], phi[x]};
  }
  allocated_version_[dest] = version;
}

void MpRouter::refresh_changed_destinations() {
  const auto n = static_cast<NodeId>(table_.size());
  for (NodeId dest = 0; dest < n; ++dest) {
    if (dest == self()) continue;
    if (mpda_.successor_version(dest) != allocated_version_[dest]) {
      refresh(dest, /*allow_adjust=*/false);
    }
  }
}

NodeId MpRouter::pick_next_hop_wrr(NodeId dest) {
  const auto& entry = table_[dest];
  if (entry.empty()) return graph::kInvalidNode;
  if (entry.size() == 1) return entry[0].neighbor;
  auto& credits = wrr_credits_[dest];
  if (credits.size() != entry.size()) credits.assign(entry.size(), 0.0);
  // Smooth WRR: everyone accrues its weight, the richest forwards and pays
  // one unit. Long-run shares converge to the weights with O(1) deviation.
  std::size_t best = 0;
  for (std::size_t x = 0; x < entry.size(); ++x) {
    credits[x] += entry[x].weight;
    if (credits[x] > credits[best]) best = x;
  }
  credits[best] -= 1.0;
  return entry[best].neighbor;
}

NodeId MpRouter::pick_next_hop(NodeId dest, Rng& rng) const {
  const auto& entry = table_[dest];
  if (entry.empty()) return graph::kInvalidNode;
  if (entry.size() == 1) return entry[0].neighbor;
  double total = 0;
  for (const auto& choice : entry) total += choice.weight;
  if (total <= 0) return entry[0].neighbor;
  double x = rng.uniform() * total;
  for (const auto& choice : entry) {
    x -= choice.weight;
    if (x < 0) return choice.neighbor;
  }
  return entry.back().neighbor;
}

}  // namespace mdr::core
