// The Loop-Free Invariant conditions (paper Section 3).
//
//   FD_j(i) <= D_j(i) as recorded at every neighbor k        (Eq. 16)
//   S_j(i)  = { k : D_j(k)|reported-to-i < FD_j(i) }         (Eq. 17)
//
// Theorem 1: any algorithm maintaining these renders the routing graph
// SG_j loop-free at every instant. This header provides a checker used by
// tests and by debug assertions: given a snapshot of every router's feasible
// distances and successor sets, verify the global invariant that the proof
// actually rests on — FD strictly decreases along successor edges — plus
// acyclicity of the induced graph.
#pragma once

#include <span>
#include <vector>

#include "graph/dag.h"
#include "graph/topology.h"

namespace mdr::core {

struct LfiSnapshot {
  /// feasible_distance[i] = FD_i(j) for the destination under test.
  std::vector<graph::Cost> feasible_distance;
  /// successors[i] = S_i(j).
  graph::SuccessorSets successors;
};

/// True iff FD_k(j) < FD_i(j) for every successor edge i -> k (the ordering
/// Theorem 1 derives, which immediately implies loop-freedom).
inline bool feasible_distances_decrease(const LfiSnapshot& snapshot) {
  for (std::size_t i = 0; i < snapshot.successors.size(); ++i) {
    for (const graph::NodeId k : snapshot.successors[i]) {
      if (!(snapshot.feasible_distance[k] < snapshot.feasible_distance[i])) {
        return false;
      }
    }
  }
  return true;
}

/// True iff the successor graph is acyclic (the loop-freedom property
/// itself). Checked independently of the FD ordering so tests can detect a
/// broken implementation that is accidentally loop-free.
inline bool successor_graph_loop_free(const LfiSnapshot& snapshot) {
  return graph::is_acyclic(snapshot.successors);
}

}  // namespace mdr::core
