#include "core/mpda.h"

#include <algorithm>
#include <cassert>

namespace mdr::core {

using graph::Cost;
using graph::NodeId;
using proto::LsuMessage;

MpdaProcess::MpdaProcess(NodeId self, std::size_t num_nodes,
                         proto::LsuSink& sink, LsuPacing pacing)
    : tables_(self, num_nodes),
      sink_(&sink),
      fd_(num_nodes, graph::kInfCost),
      successors_(num_nodes),
      successor_versions_(num_nodes, 0),
      succ_dirty_(num_nodes, 0),
      pacing_(pacing) {
  fd_[self] = 0;
  assert(!pacing_.enabled ||
         (pacing_.min_interval > 0 &&
          pacing_.max_interval >= pacing_.min_interval));
}

std::size_t MpdaProcess::acks_pending() const {
  std::size_t total = 0;
  for (const auto& [k, msgs] : unacked_) total += msgs.size();
  return total;
}

void MpdaProcess::retransmit_unacked() {
  for (auto& [k, msgs] : unacked_) {
    if (!tables_.is_neighbor(k)) continue;
    std::size_t sent = 0;
    for (auto& [seq, pending] : msgs) {
      if (pending.cooldown > 0) {
        --pending.cooldown;
        continue;
      }
      // Only actual sends consume window slots: a head-of-line message in
      // deep backoff must not starve ready newer LSUs behind it. Ready
      // messages past the window keep cooldown 0 and go first next tick
      // (oldest first, so the receiver's duplicate filter stays effective).
      if (sent == kRetransmitWindow) break;
      ++sent;
      LsuMessage copy = pending.msg;
      copy.ack = false;  // a stale piggybacked ack must not be replayed
      copy.ack_seq = 0;
      send(k, copy);
      ++lsus_retransmitted_;
      ++pending.attempts;
      pending.cooldown = std::min(
          pending.attempts < 6 ? (1u << pending.attempts) - 1 : ~0u,
          kRetransmitBackoffCap - 1);
    }
  }
}

void MpdaProcess::reset() {
  tables_ = proto::RouterTables(tables_.self(), fd_.size());
  mode_ = Mode::kPassive;
  next_seq_ = 1;
  unacked_.clear();
  last_seen_seq_.clear();
  full_sync_.clear();
  pace_.clear();  // a rebooted router has no memory of past instability
  std::fill(fd_.begin(), fd_.end(), graph::kInfCost);
  fd_[tables_.self()] = 0;
  succ_all_dirty_ = true;
  for (const NodeId j : succ_dirty_list_) succ_dirty_[j] = 0;
  succ_dirty_list_.clear();
  for (std::size_t j = 0; j < successors_.size(); ++j) {
    if (!successors_[j].empty()) {
      successors_[j].clear();
      ++successor_versions_[j];
    }
  }
  // messages_sent_ and the lsus_*/acks_sent_ breakdown are measurement
  // counters, not protocol state: they keep counting across incarnations so
  // run statistics stay conserved.
}

void MpdaProcess::send(NodeId k, const LsuMessage& msg) {
  sink_->send(k, msg);
  ++messages_sent_;
}

void MpdaProcess::on_link_up(NodeId k, Cost cost) {
  // The fresh adjacency announces its own cost; a change coalesced before
  // the link went down is obsolete.
  if (auto it = pace_.find(k); it != pace_.end()) {
    it->second.has_pending = false;
    it->second.pending_up = false;
  }
  obs::SpanEpisodeGuard span_guard;
  if (spans_ != nullptr) {
    spans_->begin_local_episode(self(), span_now());
    span_guard.r = spans_;
  }
  tables_.link_up(k, cost);
  succ_all_dirty_ = true;  // the successor-set universe itself changed
  full_sync_.insert(k);  // Fig. 2 step 2: owe k the full topology table
  after_ntu({});
  // If the flood above did not run (no change to T), the new neighbor still
  // needs the full topology; send it directly. The per-sequence ack window
  // keeps this safe alongside an outstanding flood.
  if (full_sync_.contains(k) && !tables_.main_topology().empty()) {
    full_sync_.erase(k);
    LsuMessage msg{self(), /*ack=*/false,
                   tables_.main_topology().as_entries()};
    msg.seq = next_seq_++;
    unacked_[k][msg.seq] = Pending{msg};
    send(k, msg);
    ++lsus_originated_;
    probe_.emit(obs::EventType::kLsuOriginate, k, msg.seq,
                static_cast<double>(msg.entries.size()));
    if (spans_ != nullptr) spans_->on_send(self(), k, msg.seq, span_now());
    mode_ = Mode::kActive;
  }
}

void MpdaProcess::on_link_down(NodeId k) {
  // A cost change coalesced for a link that just died must never flush —
  // and a deferred re-announcement dies with it (the whole bounce never
  // reaches the wire).
  if (auto it = pace_.find(k); it != pace_.end()) {
    it->second.has_pending = false;
    it->second.pending_up = false;
  }
  obs::SpanEpisodeGuard span_guard;
  if (spans_ != nullptr) {
    spans_->begin_local_episode(self(), span_now());
    span_guard.r = spans_;
  }
  tables_.link_down(k);
  succ_all_dirty_ = true;  // the successor-set universe itself changed
  // Paper: "When a router detects that an adjacent link failed, any pending
  // ACKs from the neighbor at the other end of the link are treated as
  // received."
  unacked_.erase(k);
  last_seen_seq_.erase(k);
  full_sync_.erase(k);
  after_ntu({});
}

void MpdaProcess::on_link_cost_change(NodeId k, Cost cost) {
  obs::SpanEpisodeGuard span_guard;
  if (spans_ != nullptr) {
    spans_->begin_local_episode(self(), span_now());
    span_guard.r = spans_;
  }
  tables_.link_cost_change(k, cost);
  after_ntu({});
}

void MpdaProcess::on_link_cost_change_at(NodeId k, Cost cost, Time now) {
  if (!pacing_.enabled) {
    on_link_cost_change(k, cost);
    return;
  }
  auto [it, inserted] = pace_.try_emplace(k, Pace{pacing_.min_interval});
  Pace& p = it->second;
  if (p.has_pending && p.pending_up) {
    // The announcement itself is still deferred (possibly past its window,
    // awaiting the next tick): the new cost just rides along with it.
    p.pending = cost;
    ++lsus_suppressed_;
    return;
  }
  if (now >= p.next_allowed) {
    // Hold-down expired. If a whole extra interval passed quietly the link
    // has calmed down: snap the backoff to its floor before originating.
    if (now - p.next_allowed >= p.interval) p.interval = pacing_.min_interval;
    p.next_allowed = now + p.interval;
    on_link_cost_change(k, cost);
  } else {
    // Inside the hold-down: coalesce — only the latest cost survives. Each
    // swallowed event is one origination flood the network never saw.
    p.pending = cost;
    p.has_pending = true;
    ++lsus_suppressed_;
  }
}

void MpdaProcess::on_link_up_at(NodeId k, Cost cost, Time now) {
  if (!pacing_.enabled) {
    on_link_up(k, cost);
    return;
  }
  auto [it, inserted] = pace_.try_emplace(k, Pace{pacing_.min_interval});
  Pace& p = it->second;
  if (now >= p.next_allowed) {
    if (now - p.next_allowed >= p.interval) p.interval = pacing_.min_interval;
    p.next_allowed = now + p.interval;
    on_link_up(k, cost);
  } else {
    // Re-announcement inside the hold-down: the link just bounced. Defer
    // the up; if the link dies again before the window closes, on_link_down
    // cancels it and the whole bounce never reached the wire.
    p.pending = cost;
    p.has_pending = true;
    p.pending_up = true;
    ++lsus_suppressed_;
  }
}

void MpdaProcess::pacing_tick(Time now) {
  if (!pacing_.enabled) return;
  for (auto& [k, p] : pace_) {
    if (now < p.next_allowed || !p.has_pending) continue;
    p.has_pending = false;
    const bool was_up = p.pending_up;
    p.pending_up = false;
    // Trickle: a window that had to coalesce means the link is unstable —
    // lengthen the next hold-down (capped). The quiet-window snap-back
    // happens in on_link_cost_change_at when the next change arrives.
    p.interval = std::min(p.interval * 2, pacing_.max_interval);
    p.next_allowed = now + p.interval;
    if (was_up) {
      on_link_up(k, p.pending);
    } else if (tables_.is_neighbor(k)) {
      on_link_cost_change(k, p.pending);
    }
  }
}

void MpdaProcess::on_lsu(const LsuMessage& msg) {
  if (!tables_.is_neighbor(msg.sender)) return;  // raced with a link_down
  probe_.emit(obs::EventType::kLsuReceive, msg.sender, msg.seq,
              static_cast<double>(msg.entries.size()));
  NtuOutcome outcome;
  obs::SpanEpisodeGuard span_guard;
  if (msg.ack) {
    const auto it = unacked_.find(msg.sender);
    if (it != unacked_.end()) {
      it->second.erase(msg.ack_seq);
      if (it->second.empty()) unacked_.erase(it);
    }
  }
  if (!msg.entries.empty()) {
    auto& last_seen = last_seen_seq_[msg.sender];
    const bool fresh = msg.seq == 0 || msg.seq > last_seen;
    if (spans_ != nullptr) {
      // The processing episode is caused by the sender's (re-)origination
      // (sender, seq) — the edge that links causal trees across hops.
      spans_->begin_lsu_episode(self(), msg.sender, msg.seq, fresh,
                                /*ack=*/false, span_now());
      span_guard.r = spans_;
    }
    if (fresh) {
      // Fresh LSU: apply. (A retransmitted duplicate is skipped but still
      // acknowledged below — its previous ack evidently went missing.)
      last_seen = std::max(last_seen, msg.seq);
      obs::ProfScope prof(prof_, obs::ProfSection::kMpdaTableUpdate);
      for (const NodeId j : tables_.apply_lsu(msg.sender, msg.entries)) {
        mark_succ_dirty(j);  // D_j,sender moved: S_j needs re-evaluation
      }
    }
    outcome.ack_to = msg.sender;  // Fig. 4 steps 7-8: must acknowledge
    outcome.ack_seq = msg.seq;
  } else if (spans_ != nullptr && msg.ack) {
    // Pure ack: attach to the tree of OUR origination it acknowledges
    // ((self, ack_seq) is the send that started the round trip).
    spans_->begin_lsu_episode(self(), self(), msg.ack_seq, /*applied=*/false,
                              /*ack=*/true, span_now());
    span_guard.r = spans_;
  }
  after_ntu(outcome);
}

void MpdaProcess::after_ntu(const NtuOutcome& outcome) {
  std::vector<proto::LsuEntry> changes;
  if (mode_ == Mode::kPassive) {
    // Fig. 4 step 2: update T and lower the feasible distances. While
    // PASSIVE every earlier MTU already took min(FD_j, D_j), so FD_j can
    // only move where D_j just did — the scan is restricted to those.
    obs::ProfScope prof(prof_, obs::ProfSection::kMpdaTableUpdate);
    changes = tables_.mtu();
    for (const NodeId j : tables_.last_mtu_dist_changed()) {
      const Cost prev = fd_[j];
      fd_[j] = std::min(fd_[j], tables_.distance(j));
      if (fd_[j] != prev) {
        mark_succ_dirty(j);
        if (probe_.enabled()) {
          probe_.emit(obs::EventType::kFdChange, j, fd_[j], prev);
        }
      }
    }
  } else if (unacked_.empty()) {
    // Fig. 4 step 3: the last ACK arrived (or the last blocking neighbor
    // failed). D before the deferred MTU is what every neighbor has
    // acknowledged; FD may rise to min(pre, post).
    obs::ProfScope prof(prof_, obs::ProfSection::kMpdaTableUpdate);
    std::vector<Cost> temp(fd_.size());
    for (std::size_t j = 0; j < temp.size(); ++j) {
      temp[j] = tables_.distance(static_cast<NodeId>(j));
    }
    mode_ = Mode::kPassive;
    changes = tables_.mtu();
    // FD may RISE here, so the passive-mode "only where D_j moved"
    // restriction does not apply: every destination is re-evaluated.
    for (std::size_t j = 0; j < fd_.size(); ++j) {
      const Cost prev = fd_[j];
      fd_[j] = std::min(temp[j], tables_.distance(static_cast<NodeId>(j)));
      if (fd_[j] != prev) {
        mark_succ_dirty(static_cast<NodeId>(j));
        if (probe_.enabled()) {
          probe_.emit(obs::EventType::kFdChange, static_cast<NodeId>(j),
                      fd_[j], prev);
        }
      }
    }
  }
  // While ACTIVE with outstanding ACKs: NTU already refreshed T_k and D_jk;
  // T, D and FD stay frozen (the deferred update).

  recompute_successors();  // Fig. 4 step 4

  if (!changes.empty()) {
    // Fig. 4 steps 5-6: flood the diff, await everyone's ACK.
    obs::ProfScope prof(prof_, obs::ProfSection::kMpdaFlood);
    mode_ = Mode::kActive;
    for (const NodeId k : tables_.neighbors()) {
      // A just-attached neighbor gets the whole table, not the diff.
      LsuMessage msg{self(), k == outcome.ack_to,
                     full_sync_.erase(k) > 0
                         ? tables_.main_topology().as_entries()
                         : changes};
      msg.ack_seq = msg.ack ? outcome.ack_seq : 0;
      msg.seq = next_seq_++;
      unacked_[k][msg.seq] = Pending{msg};
      send(k, msg);
      ++lsus_originated_;
      probe_.emit(obs::EventType::kLsuOriginate, k, msg.seq,
                  static_cast<double>(msg.entries.size()));
      if (spans_ != nullptr) spans_->on_send(self(), k, msg.seq, span_now());
    }
  } else if (outcome.ack_to != graph::kInvalidNode &&
             tables_.is_neighbor(outcome.ack_to)) {
    // Nothing to report but the received LSU must still be acknowledged.
    LsuMessage msg{self(), /*ack=*/true, {}};
    msg.ack_seq = outcome.ack_seq;
    send(outcome.ack_to, msg);
    ++acks_sent_;
  }
}

void MpdaProcess::mark_succ_dirty(NodeId j) {
  if (succ_all_dirty_) return;
  if (j < 0 || static_cast<std::size_t>(j) >= succ_dirty_.size()) return;
  if (succ_dirty_[j] == 0) {
    succ_dirty_[j] = 1;
    succ_dirty_list_.push_back(j);
  }
}

void MpdaProcess::recompute_successors() {
  obs::ProfScope prof(prof_, obs::ProfSection::kMpdaRecompute);
  // S_j can only change where an input did: some D_jk (marked from
  // apply_lsu's repair delta), FD_j (marked by the FD loops), or the
  // neighbor set itself (succ_all_dirty_). Unmarked destinations are
  // skipped — their set comparison could never differ.
  struct View {
    NodeId k;
    const std::vector<graph::Cost>* dist;
  };
  std::vector<View> views;
  views.reserve(tables_.neighbors().size());
  for (const NodeId k : tables_.neighbors()) {
    if (const auto* d = tables_.distances_via(k)) views.push_back(View{k, d});
  }
  std::vector<NodeId> next;
  const auto eval = [&](NodeId j) {
    if (j == self()) return;
    next.clear();
    for (const View& v : views) {
      // Eq. 17: neighbors strictly below the feasible distance.
      if ((*v.dist)[j] < fd_[j]) next.push_back(v.k);
    }
    if (next != successors_[j]) {
      successors_[j] = next;
      ++successor_versions_[j];
      probe_.emit(obs::EventType::kSuccessorChange, j,
                  static_cast<double>(next.size()), fd_[j]);
      if (spans_ != nullptr) spans_->on_successor_change(self(), j, span_now());
    }
  };
  if (succ_all_dirty_) {
    for (NodeId j = 0; j < static_cast<NodeId>(fd_.size()); ++j) eval(j);
    succ_all_dirty_ = false;
  } else {
    // Ascending, so probe/span emission order matches a full scan.
    std::sort(succ_dirty_list_.begin(), succ_dirty_list_.end());
    for (const NodeId j : succ_dirty_list_) eval(j);
  }
  for (const NodeId j : succ_dirty_list_) succ_dirty_[j] = 0;
  succ_dirty_list_.clear();
}

}  // namespace mdr::core
