#include "core/allocation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mdr::core {

std::vector<double> initial_allocation(
    std::span<const SuccessorMetric> metrics) {
  std::vector<double> phi(metrics.size(), 0.0);
  if (metrics.empty()) return phi;
  if (metrics.size() == 1) {
    phi[0] = 1.0;
    return phi;
  }
  double sum = 0;
  for (const auto& m : metrics) {
    assert(std::isfinite(m.distance) && m.distance > 0);
    sum += m.distance;
  }
  const double denom = static_cast<double>(metrics.size()) - 1.0;
  for (std::size_t x = 0; x < metrics.size(); ++x) {
    phi[x] = (1.0 - metrics[x].distance / sum) / denom;
  }
  return phi;
}

double adjust_allocation(std::span<const SuccessorMetric> metrics,
                         std::span<double> phi, double damping) {
  assert(metrics.size() == phi.size());
  assert(damping > 0 && damping <= 1.0);
  if (metrics.size() < 2) return 0.0;

  // Fig. 7 steps 1-2: the best successor k0.
  std::size_t k0 = 0;
  for (std::size_t x = 1; x < metrics.size(); ++x) {
    if (metrics[x].distance < metrics[k0].distance) k0 = x;
  }
  const double dmin = metrics[k0].distance;

  // Fig. 7 steps 3-4: a_k and the largest proportional shift that keeps
  // every phi non-negative (delta is capped by the successor that would hit
  // zero first; only successors that actually carry traffic constrain it).
  double delta = std::numeric_limits<double>::infinity();
  for (std::size_t x = 0; x < metrics.size(); ++x) {
    const double a = metrics[x].distance - dmin;
    if (x == k0 || a <= 0 || phi[x] <= 0) continue;
    delta = std::min(delta, phi[x] / a);
  }
  if (!std::isfinite(delta)) return 0.0;  // perfectly balanced already
  delta *= damping;

  // Fig. 7 steps 5-6: drain proportionally, pile onto the best successor.
  double moved = 0;
  for (std::size_t x = 0; x < metrics.size(); ++x) {
    const double a = metrics[x].distance - dmin;
    if (x == k0 || a <= 0 || phi[x] <= 0) continue;
    const double take = std::min(phi[x], delta * a);
    phi[x] -= take;
    if (phi[x] < 1e-15) {
      moved += phi[x] + take;
      phi[x] = 0.0;
    } else {
      moved += take;
    }
  }
  phi[k0] += moved;
  return moved;
}

std::vector<double> best_successor_allocation(
    std::span<const SuccessorMetric> metrics) {
  std::vector<double> phi(metrics.size(), 0.0);
  if (metrics.empty()) return phi;
  std::size_t best = 0;
  for (std::size_t x = 1; x < metrics.size(); ++x) {
    if (metrics[x].distance < metrics[best].distance ||
        (metrics[x].distance == metrics[best].distance &&
         metrics[x].neighbor < metrics[best].neighbor)) {
      best = x;
    }
  }
  phi[best] = 1.0;
  return phi;
}

}  // namespace mdr::core
