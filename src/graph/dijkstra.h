// Dijkstra shortest-path-first over arbitrary edge lists.
//
// The protocol layer (PDA/MPDA, Figs. 1-4 of the paper) runs Dijkstra both on
// a router's merged main topology table and on each neighbor topology table,
// none of which are Topology objects; so the core routine works on a plain
// span of costed edges. Ties are broken deterministically (paper: "ties
// should be broken consistently during the run of Dijkstra's algorithm"):
// among equal-cost relaxations the lower parent id wins, and the result is
// independent of edge order.
#pragma once

#include <span>
#include <vector>

#include "graph/topology.h"

namespace mdr::graph {

/// One directed edge with a routing cost, detached from any Topology.
struct CostedEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Cost cost = kInfCost;
};

/// Shortest-path tree: distances and tree parents indexed by node id.
struct ShortestPathTree {
  std::vector<Cost> dist;      ///< kInfCost when unreachable
  std::vector<NodeId> parent;  ///< kInvalidNode for root / unreachable

  bool reachable(NodeId node) const { return dist[node] < kInfCost; }

  /// First hop from the root toward `node` (kInvalidNode if unreachable or
  /// node == root).
  NodeId first_hop(NodeId root, NodeId node) const;
};

/// Runs Dijkstra from `root` over `edges` on nodes [0, num_nodes).
///
/// Edges with non-finite or negative cost are ignored (a failed link is
/// conventionally given kInfCost). Multiple edges between the same pair keep
/// the cheapest.
ShortestPathTree dijkstra(std::size_t num_nodes, std::span<const CostedEdge> edges,
                          NodeId root);

/// Convenience overload: runs over a Topology with per-link costs indexed by
/// LinkId.
ShortestPathTree dijkstra(const Topology& topo, std::span<const Cost> link_costs,
                          NodeId root);

/// Extracts the tree edges of an SPT as costed edges (cost = edge cost used),
/// i.e. the link-state a PDA router would advertise. Requires the original
/// edge list to recover costs.
std::vector<CostedEdge> tree_edges(const ShortestPathTree& spt,
                                   std::span<const CostedEdge> edges);

}  // namespace mdr::graph
