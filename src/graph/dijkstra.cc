#include "graph/dijkstra.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

namespace mdr::graph {

NodeId ShortestPathTree::first_hop(NodeId root, NodeId node) const {
  if (node == root || !reachable(node)) return kInvalidNode;
  NodeId cur = node;
  while (parent[cur] != root) {
    cur = parent[cur];
    if (cur == kInvalidNode) return kInvalidNode;
  }
  return cur;
}

namespace {

// Builds a compact adjacency structure, keeping only usable edges and the
// cheapest parallel edge per (from, to) pair. Deterministic given the edge
// multiset (sorted before dedup).
struct Adjacency {
  std::vector<std::vector<std::pair<NodeId, Cost>>> out;  // per from-node

  Adjacency(std::size_t n, std::span<const CostedEdge> edges) : out(n) {
    std::vector<CostedEdge> usable;
    usable.reserve(edges.size());
    for (const CostedEdge& e : edges) {
      if (e.from < 0 || e.to < 0) continue;
      if (static_cast<std::size_t>(e.from) >= n) continue;
      if (static_cast<std::size_t>(e.to) >= n) continue;
      if (!(e.cost >= 0) || e.cost == kInfCost) continue;  // drops NaN too
      usable.push_back(e);
    }
    std::sort(usable.begin(), usable.end(),
              [](const CostedEdge& a, const CostedEdge& b) {
                return std::tie(a.from, a.to, a.cost) <
                       std::tie(b.from, b.to, b.cost);
              });
    for (std::size_t i = 0; i < usable.size(); ++i) {
      if (i > 0 && usable[i].from == usable[i - 1].from &&
          usable[i].to == usable[i - 1].to) {
        continue;  // keep cheapest parallel edge only
      }
      out[usable[i].from].emplace_back(usable[i].to, usable[i].cost);
    }
  }
};

}  // namespace

ShortestPathTree dijkstra(std::size_t num_nodes,
                          std::span<const CostedEdge> edges, NodeId root) {
  assert(root >= 0 && static_cast<std::size_t>(root) < num_nodes);
  ShortestPathTree spt;
  spt.dist.assign(num_nodes, kInfCost);
  spt.parent.assign(num_nodes, kInvalidNode);

  const Adjacency adj(num_nodes, edges);

  using Entry = std::pair<Cost, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  spt.dist[root] = 0;
  heap.emplace(0.0, root);
  std::vector<bool> settled(num_nodes, false);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled[u]) continue;
    settled[u] = true;
    for (const auto& [v, w] : adj.out[u]) {
      if (settled[v]) continue;
      const Cost nd = d + w;
      if (nd < spt.dist[v]) {
        spt.dist[v] = nd;
        spt.parent[v] = u;
        heap.emplace(nd, v);
      } else if (nd == spt.dist[v] && u < spt.parent[v]) {
        // Consistent tie-break: among equal-cost parents prefer the lowest
        // id, so every router that sees the same topology derives the same
        // tree (required by MTU, Fig. 3 of the paper).
        spt.parent[v] = u;
      }
    }
  }
  return spt;
}

ShortestPathTree dijkstra(const Topology& topo,
                          std::span<const Cost> link_costs, NodeId root) {
  assert(link_costs.size() == topo.num_links());
  std::vector<CostedEdge> edges;
  edges.reserve(topo.num_links());
  for (LinkId id = 0; id < static_cast<LinkId>(topo.num_links()); ++id) {
    const DirectedLink& l = topo.link(id);
    edges.push_back(CostedEdge{l.from, l.to, link_costs[id]});
  }
  return dijkstra(topo.num_nodes(), edges, root);
}

std::vector<CostedEdge> tree_edges(const ShortestPathTree& spt,
                                   std::span<const CostedEdge> edges) {
  // One sorted index over the usable edges, then a binary search per tree
  // vertex — instead of rescanning the whole edge list per vertex. The
  // usability filter matches Adjacency's, so the cost recovered for a
  // parallel edge is exactly the one Dijkstra relaxed (the old rescan
  // could pick up a negative-cost parallel edge Dijkstra had discarded).
  const auto n = spt.parent.size();
  std::vector<CostedEdge> index;
  index.reserve(edges.size());
  for (const CostedEdge& e : edges) {
    if (e.from < 0 || e.to < 0) continue;
    if (static_cast<std::size_t>(e.from) >= n) continue;
    if (static_cast<std::size_t>(e.to) >= n) continue;
    if (!(e.cost >= 0) || e.cost == kInfCost) continue;  // drops NaN too
    index.push_back(e);
  }
  std::sort(index.begin(), index.end(),
            [](const CostedEdge& a, const CostedEdge& b) {
              return std::tie(a.from, a.to, a.cost) <
                     std::tie(b.from, b.to, b.cost);
            });
  std::vector<CostedEdge> out;
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    const NodeId u = spt.parent[v];
    if (u == kInvalidNode) continue;
    // First match is the cheapest (u, v) edge; it is the one Dijkstra used.
    const auto it = std::lower_bound(
        index.begin(), index.end(), std::pair{u, v},
        [](const CostedEdge& e, std::pair<NodeId, NodeId> key) {
          return std::tie(e.from, e.to) < std::tie(key.first, key.second);
        });
    const Cost best = (it != index.end() && it->from == u && it->to == v)
                          ? it->cost
                          : kInfCost;
    out.push_back(CostedEdge{u, v, best});
  }
  return out;
}

}  // namespace mdr::graph
