// Network topology model.
//
// A Topology is a set of named routers and directed links between them, each
// link carrying the physical attributes the paper's delay model needs
// (capacity in bits/s, propagation delay in seconds). Links are directed as
// in the paper ("each link is bidirectional with possibly different costs in
// each direction"); add_duplex() installs the two directions at once.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mdr::graph {

/// Dense router identifier, 0..num_nodes()-1.
using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

/// Link or path cost; the routing layer uses marginal delays as costs.
using Cost = double;
inline constexpr Cost kInfCost = std::numeric_limits<Cost>::infinity();

/// Dense link identifier, 0..num_links()-1.
using LinkId = int;
inline constexpr LinkId kInvalidLink = -1;

/// Physical attributes of a directed link.
struct LinkAttr {
  double capacity_bps = 10e6;  ///< transmission rate C in bits per second
  double prop_delay_s = 1e-3;  ///< propagation delay tau in seconds
};

/// A directed link (one direction of a physical cable).
struct DirectedLink {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  LinkAttr attr;
};

/// Immutable-after-build network graph with O(1) adjacency queries.
class Topology {
 public:
  /// Adds a router; names must be unique and non-empty.
  NodeId add_node(std::string name);

  /// Adds `count` routers named "n0", "n1", ... returning the first id.
  NodeId add_nodes(std::size_t count);

  /// Adds one directed link; returns its id. from/to must exist and differ.
  LinkId add_link(NodeId from, NodeId to, LinkAttr attr = {});

  /// Adds both directions with the same attributes.
  void add_duplex(NodeId a, NodeId b, LinkAttr attr = {});

  std::size_t num_nodes() const { return names_.size(); }
  std::size_t num_links() const { return links_.size(); }

  const DirectedLink& link(LinkId id) const { return links_[id]; }
  DirectedLink& mutable_link(LinkId id) { return links_[id]; }

  /// Ids of links leaving `node`.
  std::span<const LinkId> out_links(NodeId node) const;

  /// Neighbor ids reachable over one outgoing link from `node`.
  std::span<const NodeId> neighbors(NodeId node) const;

  /// Link id of the (from -> to) link or kInvalidLink.
  LinkId find_link(NodeId from, NodeId to) const;

  std::string_view name(NodeId node) const { return names_[node]; }

  /// Node id by name, or kInvalidNode if absent.
  NodeId find_node(std::string_view name) const;

  /// Maximum out-degree over all nodes (useful for sizing routing state).
  std::size_t max_degree() const;

  /// True if every node can reach every other node over directed links.
  bool is_strongly_connected() const;

  /// Longest shortest-path hop count over all reachable pairs.
  std::size_t diameter_hops() const;

 private:
  std::vector<std::string> names_;
  std::vector<DirectedLink> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<NodeId>> neighbors_;
};

}  // namespace mdr::graph
