// Successor-graph utilities.
//
// For a destination j, the successor sets S_i(j) of all routers induce the
// routing graph SG_j (Section 3 of the paper). Loop-freedom at every instant
// means SG_j is a DAG at every instant; these helpers check that and produce
// the topological orders the flow plane needs.
#pragma once

#include <optional>
#include <vector>

#include "graph/topology.h"

namespace mdr::graph {

/// successor_sets[i] = the next hops S_i(j) of node i for one destination.
using SuccessorSets = std::vector<std::vector<NodeId>>;

/// True if the directed graph {i -> k : k in successor_sets[i]} is acyclic.
bool is_acyclic(const SuccessorSets& successor_sets);

/// Kahn topological order: every edge i -> successor goes from earlier to
/// later in the returned order. nullopt if the graph has a cycle.
///
/// Traffic conservation (Eq. 1) is evaluated in this order (upstream nodes
/// first); marginal distances (Eq. 4) in the reverse order (destination
/// first).
std::optional<std::vector<NodeId>> topological_order(
    const SuccessorSets& successor_sets);

/// Nodes from which `dest` is reachable by following successor edges.
std::vector<bool> can_reach(const SuccessorSets& successor_sets, NodeId dest);

}  // namespace mdr::graph
