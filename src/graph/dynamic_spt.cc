#include "graph/dynamic_spt.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace mdr::graph {

namespace {

// Heap entries are (distance, node); std::greater pops the smallest.
using HeapEntry = std::pair<Cost, NodeId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

DynamicSpt::DynamicSpt(std::size_t num_nodes, NodeId root)
    : root_(root),
      dist_(num_nodes, kInfCost),
      parent_(num_nodes, kInvalidNode) {
  assert(root >= 0 && static_cast<std::size_t>(root) < num_nodes);
  dist_[root] = 0;
}

std::pair<const DynamicSpt::Arc*, const DynamicSpt::Arc*> DynamicSpt::range(
    const std::vector<Arc>& arcs, NodeId key) const {
  const auto cmp = [](const Arc& a, NodeId k) { return a.key < k; };
  const Arc* lo = std::lower_bound(arcs.data(), arcs.data() + arcs.size(),
                                   key, cmp);
  const Arc* hi = lo;
  while (hi != arcs.data() + arcs.size() && hi->key == key) ++hi;
  return {lo, hi};
}

Cost DynamicSpt::edge_cost(NodeId from, NodeId to) const {
  const auto [lo, hi] = range(out_, from);
  for (const Arc* a = lo; a != hi; ++a) {
    if (a->other == to) return a->cost;
  }
  return kInfCost;
}

void DynamicSpt::put_arc(std::vector<Arc>& arcs, NodeId key, NodeId other,
                         Cost cost) {
  const auto it = std::lower_bound(
      arcs.begin(), arcs.end(), std::pair{key, other},
      [](const Arc& a, std::pair<NodeId, NodeId> k) {
        return a.key < k.first || (a.key == k.first && a.other < k.second);
      });
  if (it != arcs.end() && it->key == key && it->other == other) {
    it->cost = cost;
  } else {
    arcs.insert(it, Arc{key, other, cost});
  }
}

void DynamicSpt::drop_arc(std::vector<Arc>& arcs, NodeId key, NodeId other) {
  const auto it = std::lower_bound(
      arcs.begin(), arcs.end(), std::pair{key, other},
      [](const Arc& a, std::pair<NodeId, NodeId> k) {
        return a.key < k.first || (a.key == k.first && a.other < k.second);
      });
  if (it != arcs.end() && it->key == key && it->other == other) {
    arcs.erase(it);
  }
}

void DynamicSpt::set_edge(NodeId from, NodeId to, Cost cost) {
  const auto n = static_cast<NodeId>(dist_.size());
  if (from < 0 || from >= n || to < 0 || to >= n) return;
  if (from == to) return;
  if (!(cost >= 0) || cost >= kInfCost) {  // NaN fails the first test
    remove_edge(from, to);
    return;
  }
  const Cost current = edge_cost(from, to);
  if (cost == current) return;
  staged_.try_emplace({from, to}, current);
  put_arc(out_, from, to, cost);
  put_arc(in_, to, from, cost);
}

void DynamicSpt::remove_edge(NodeId from, NodeId to) {
  const auto n = static_cast<NodeId>(dist_.size());
  if (from < 0 || from >= n || to < 0 || to >= n) return;
  if (from == to) return;
  const Cost current = edge_cost(from, to);
  if (current == kInfCost) return;
  staged_.try_emplace({from, to}, current);
  drop_arc(out_, from, to);
  drop_arc(in_, to, from);
}

NodeId DynamicSpt::canonical_parent(NodeId v) const {
  if (v == root_ || dist_[v] >= kInfCost) return kInvalidNode;
  // in_ is ascending by (to, from): the first tight predecessor is the
  // lowest-id one — exactly graph::dijkstra's tie-break.
  const auto [lo, hi] = range(in_, v);
  for (const Arc* a = lo; a != hi; ++a) {
    if (dist_[a->other] + a->cost == dist_[v]) return a->other;
  }
  return kInvalidNode;  // unreachable here unless invariants are broken
}

DynamicSpt::Delta DynamicSpt::update() {
  Delta delta;
  if (staged_.empty()) return delta;
  const std::size_t n = dist_.size();

  // Classify each staged edge by its NET effect (cost at last repair vs
  // now): a transient lower-then-higher within one batch is just a higher.
  struct Lowered {
    NodeId from, to;
    Cost cost;
  };
  std::vector<NodeId> cut_roots;      // tree edges that got worse / vanished
  std::vector<Lowered> lowered;       // edges that got better / appeared
  std::vector<NodeId> touched_tails;  // recanonicalize their parents
  for (const auto& [key, old_cost] : staged_) {
    const auto [u, v] = key;
    const Cost now_cost = edge_cost(u, v);
    if (now_cost == old_cost) continue;
    touched_tails.push_back(v);
    if (now_cost < old_cost) {
      lowered.push_back({u, v, now_cost});
    } else if (parent_[v] == u) {
      cut_roots.push_back(v);
    }
  }
  staged_.clear();
  if (touched_tails.empty()) return delta;

  // (node, distance before this update), recorded once per node on first
  // touch; the final Delta compares against these.
  if (recorded_.size() != n) {
    recorded_.assign(n, 0);
    in_region_.assign(n, 0);
    cand_.assign(n, kInfCost);
  }
  std::vector<std::pair<NodeId, Cost>> old_dist;
  const auto record_old = [&](NodeId v) {
    if (recorded_[v] == 0) {
      recorded_[v] = 1;
      old_dist.emplace_back(v, dist_[v]);
    }
  };

  MinHeap heap;
  std::vector<NodeId> region;

  // Phase 1 — delete/increase repair. Cut out the subtrees hanging off the
  // worsened tree edges, then run Dijkstra restricted to that region,
  // seeded with the best entry cost over every boundary edge.
  if (!cut_roots.empty()) {
    std::vector<NodeId> stack = cut_roots;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      if (in_region_[v] != 0) continue;
      in_region_[v] = 1;
      region.push_back(v);
      const auto [lo, hi] = range(out_, v);
      for (const Arc* a = lo; a != hi; ++a) {
        if (parent_[a->other] == v) stack.push_back(a->other);
      }
    }
    for (const NodeId a : region) {
      record_old(a);
      dist_[a] = kInfCost;
    }
    for (const NodeId a : region) {
      const auto [lo, hi] = range(in_, a);
      for (const Arc* arc = lo; arc != hi; ++arc) {
        if (in_region_[arc->other] == 0 && dist_[arc->other] < kInfCost) {
          const Cost d = dist_[arc->other] + arc->cost;
          if (d < cand_[a]) cand_[a] = d;
        }
      }
      if (cand_[a] < kInfCost) heap.emplace(cand_[a], a);
    }
    while (!heap.empty()) {
      const auto [d, a] = heap.top();
      heap.pop();
      if (in_region_[a] == 0 || d > cand_[a]) continue;  // settled or stale
      in_region_[a] = 0;
      dist_[a] = d;
      const auto [lo, hi] = range(out_, a);
      for (const Arc* arc = lo; arc != hi; ++arc) {
        if (in_region_[arc->other] != 0) {
          const Cost nd = d + arc->cost;
          if (nd < cand_[arc->other]) {
            cand_[arc->other] = nd;
            heap.emplace(nd, arc->other);
          }
        }
      }
    }
    // Restore the between-updates scratch invariant (unreachable region
    // members were never settled, so their in_region_ byte is still set).
    for (const NodeId a : region) {
      in_region_[a] = 0;
      cand_[a] = kInfCost;
    }
    // A region member can come back BELOW its old distance (the same batch
    // also lowered an edge on its new path); such nodes are a lowering
    // frontier for phase 2 — their out-neighbors outside the region may
    // improve too.
    for (std::size_t i = 0; i < region.size(); ++i) {
      const auto [a, old] = old_dist[i];  // region recorded first, in order
      if (dist_[a] < old) heap.emplace(dist_[a], a);
    }
  }

  // Phase 2 — decrease/insert repair: relax from the improved edges (and
  // any phase-1 nodes that ended up below their old distance) until the
  // lowering stops propagating.
  for (const Lowered& l : lowered) {
    if (dist_[l.from] < kInfCost) {
      const Cost nd = dist_[l.from] + l.cost;
      if (nd < dist_[l.to]) {
        record_old(l.to);
        dist_[l.to] = nd;
        heap.emplace(nd, l.to);
      }
    }
  }
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist_[v]) continue;  // stale
    const auto [lo, hi] = range(out_, v);
    for (const Arc* arc = lo; arc != hi; ++arc) {
      const Cost nd = d + arc->cost;
      if (nd < dist_[arc->other]) {
        record_old(arc->other);
        dist_[arc->other] = nd;
        heap.emplace(nd, arc->other);
      }
    }
  }

  // Recanonicalize parents everywhere the choice could have moved: every
  // touched node, every tail of a changed edge, and every out-neighbor of
  // a node whose distance actually changed (it may have gained or lost a
  // tight predecessor).
  std::vector<NodeId> need_parent = std::move(touched_tails);
  for (const auto& [v, old] : old_dist) {
    need_parent.push_back(v);
    if (dist_[v] != old) {
      delta.dist_changed.push_back(v);
      const auto [lo, hi] = range(out_, v);
      for (const Arc* arc = lo; arc != hi; ++arc) {
        need_parent.push_back(arc->other);
      }
    }
  }
  for (const auto& [v, old] : old_dist) recorded_[v] = 0;
  std::sort(delta.dist_changed.begin(), delta.dist_changed.end());
  std::sort(need_parent.begin(), need_parent.end());
  need_parent.erase(std::unique(need_parent.begin(), need_parent.end()),
                    need_parent.end());
  for (const NodeId v : need_parent) {
    if (v == root_) continue;
    const NodeId best = canonical_parent(v);
    if (best != parent_[v]) {
      delta.parent_changed.emplace_back(v, parent_[v]);
      parent_[v] = best;
    }
  }
  return delta;
}

void DynamicSpt::rebuild() {
  staged_.clear();
  const std::size_t n = dist_.size();
  std::fill(dist_.begin(), dist_.end(), kInfCost);
  std::fill(parent_.begin(), parent_.end(), kInvalidNode);
  if (root_ == kInvalidNode) return;
  dist_[root_] = 0;
  MinHeap heap;
  heap.emplace(0.0, root_);
  std::vector<std::uint8_t> settled(n, 0);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled[u] != 0) continue;
    settled[u] = 1;
    const auto [lo, hi] = range(out_, u);
    for (const Arc* arc = lo; arc != hi; ++arc) {
      const Cost nd = d + arc->cost;
      if (nd < dist_[arc->other]) {
        dist_[arc->other] = nd;
        heap.emplace(nd, arc->other);
      }
    }
  }
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    parent_[v] = canonical_parent(v);
  }
}

}  // namespace mdr::graph
