// Bellman-Ford distance computation.
//
// Eq. (13) of the paper is the distributed Bellman-Ford equation; this
// centralized version exists (a) to cross-check Dijkstra in tests and (b) to
// compute n-hop minimum distances, the quantity PDA's convergence proof
// (Lemma 1 / Theorem 2) is stated in terms of.
#pragma once

#include <span>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/topology.h"

namespace mdr::graph {

/// Distances from `root` after at most `max_hops` relaxation rounds, i.e. the
/// n-hop minimum distances D(n) of the paper's Lemma 1. Pass
/// max_hops >= num_nodes-1 for exact shortest distances.
std::vector<Cost> bellman_ford(std::size_t num_nodes,
                               std::span<const CostedEdge> edges, NodeId root,
                               std::size_t max_hops);

/// Exact shortest distances (num_nodes-1 rounds).
std::vector<Cost> bellman_ford(std::size_t num_nodes,
                               std::span<const CostedEdge> edges, NodeId root);

}  // namespace mdr::graph
