#include "graph/topology.h"

#include <cassert>
#include <queue>

namespace mdr::graph {

NodeId Topology::add_node(std::string name) {
  assert(!name.empty());
  assert(find_node(name) == kInvalidNode);
  names_.push_back(std::move(name));
  out_links_.emplace_back();
  neighbors_.emplace_back();
  return static_cast<NodeId>(names_.size() - 1);
}

NodeId Topology::add_nodes(std::size_t count) {
  const NodeId first = static_cast<NodeId>(names_.size());
  for (std::size_t i = 0; i < count; ++i) {
    add_node("n" + std::to_string(first + static_cast<NodeId>(i)));
  }
  return first;
}

LinkId Topology::add_link(NodeId from, NodeId to, LinkAttr attr) {
  assert(from >= 0 && static_cast<std::size_t>(from) < num_nodes());
  assert(to >= 0 && static_cast<std::size_t>(to) < num_nodes());
  assert(from != to);
  assert(find_link(from, to) == kInvalidLink);
  assert(attr.capacity_bps > 0);
  assert(attr.prop_delay_s >= 0);
  links_.push_back(DirectedLink{from, to, attr});
  const LinkId id = static_cast<LinkId>(links_.size() - 1);
  out_links_[from].push_back(id);
  neighbors_[from].push_back(to);
  return id;
}

void Topology::add_duplex(NodeId a, NodeId b, LinkAttr attr) {
  add_link(a, b, attr);
  add_link(b, a, attr);
}

std::span<const LinkId> Topology::out_links(NodeId node) const {
  return out_links_[node];
}

std::span<const NodeId> Topology::neighbors(NodeId node) const {
  return neighbors_[node];
}

LinkId Topology::find_link(NodeId from, NodeId to) const {
  if (from < 0 || static_cast<std::size_t>(from) >= num_nodes()) {
    return kInvalidLink;
  }
  for (LinkId id : out_links_[from]) {
    if (links_[id].to == to) return id;
  }
  return kInvalidLink;
}

NodeId Topology::find_node(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

std::size_t Topology::max_degree() const {
  std::size_t best = 0;
  for (const auto& links : out_links_) best = std::max(best, links.size());
  return best;
}

namespace {

// Hop distances from `root` via BFS; unreachable nodes get SIZE_MAX.
std::vector<std::size_t> bfs_hops(const Topology& topo, NodeId root) {
  std::vector<std::size_t> hops(topo.num_nodes(), SIZE_MAX);
  std::queue<NodeId> frontier;
  hops[root] = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : topo.neighbors(u)) {
      if (hops[v] == SIZE_MAX) {
        hops[v] = hops[u] + 1;
        frontier.push(v);
      }
    }
  }
  return hops;
}

}  // namespace

bool Topology::is_strongly_connected() const {
  if (num_nodes() == 0) return true;
  for (NodeId root = 0; root < static_cast<NodeId>(num_nodes()); ++root) {
    for (std::size_t h : bfs_hops(*this, root)) {
      if (h == SIZE_MAX) return false;
    }
  }
  return true;
}

std::size_t Topology::diameter_hops() const {
  std::size_t diameter = 0;
  for (NodeId root = 0; root < static_cast<NodeId>(num_nodes()); ++root) {
    for (std::size_t h : bfs_hops(*this, root)) {
      if (h != SIZE_MAX) diameter = std::max(diameter, h);
    }
  }
  return diameter;
}

}  // namespace mdr::graph
