#include "graph/bellman_ford.h"

#include <cassert>

namespace mdr::graph {

std::vector<Cost> bellman_ford(std::size_t num_nodes,
                               std::span<const CostedEdge> edges, NodeId root,
                               std::size_t max_hops) {
  assert(root >= 0 && static_cast<std::size_t>(root) < num_nodes);
  std::vector<Cost> dist(num_nodes, kInfCost);
  dist[root] = 0;
  std::vector<Cost> next = dist;
  for (std::size_t round = 0; round < max_hops; ++round) {
    bool changed = false;
    // Jacobi-style rounds so dist after round r is exactly the r-hop minimum
    // distance (a Gauss-Seidel sweep could look further ahead than r hops).
    for (const CostedEdge& e : edges) {
      if (e.from < 0 || e.to < 0) continue;
      if (static_cast<std::size_t>(e.from) >= num_nodes) continue;
      if (static_cast<std::size_t>(e.to) >= num_nodes) continue;
      if (!(e.cost >= 0) || e.cost == kInfCost) continue;
      if (dist[e.from] == kInfCost) continue;
      const Cost nd = dist[e.from] + e.cost;
      if (nd < next[e.to]) {
        next[e.to] = nd;
        changed = true;
      }
    }
    dist = next;
    if (!changed) break;
  }
  return dist;
}

std::vector<Cost> bellman_ford(std::size_t num_nodes,
                               std::span<const CostedEdge> edges,
                               NodeId root) {
  return bellman_ford(num_nodes, edges, root,
                      num_nodes == 0 ? 0 : num_nodes - 1);
}

}  // namespace mdr::graph
