// Incrementally maintained single-source shortest-path tree (dynamic SPT),
// in the style of Ramalingam & Reps: edge changes are staged against the
// current tree and `update()` repairs only the affected region — a
// localized delete-and-repair pass for cost increases/deletions (the old
// subtree of the changed tree edge is cut out and re-attached through its
// boundary), and a relax-from-frontier pass for decreases/insertions.
//
// The repaired tree is CANONICAL: distances are the exact doubles a
// from-scratch graph::dijkstra would compute (each is a left-to-right sum
// along a tree path, and min() over identical candidate sets is
// order-independent), and parent[v] is the lowest-id tight predecessor
// (min u with dist[u] + w(u,v) == dist[v]) — the same tie-break
// graph::dijkstra applies during relaxation. That equivalence is what lets
// the protocol layer (proto/pda.cc) swap from-scratch recomputation for
// incremental repair without changing a single output byte; it requires
// strictly positive edge costs (with zero-cost edges a tight predecessor
// can settle after its target in Dijkstra, breaking the tie-break
// equivalence — the MDR_AUDIT_TABLES audit catches any violation).
//
// Edge filtering matches graph::dijkstra's Adjacency: self-loops,
// endpoints outside [0, n) and non-finite/negative costs are treated as
// "no edge". At most one edge per (from, to) pair is stored; the caller
// (a LinkStateTable mirror) has the same keying, so parallel edges never
// arise here.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "graph/topology.h"

namespace mdr::graph {

class DynamicSpt {
 public:
  DynamicSpt() = default;
  DynamicSpt(std::size_t num_nodes, NodeId root);

  NodeId root() const { return root_; }
  std::size_t num_nodes() const { return dist_.size(); }

  /// Stages an edge upsert. Unusable edges (self-loop, out-of-range ends,
  /// negative/NaN/infinite cost) degrade to removals, mirroring the
  /// from-scratch filter. Takes effect at the next update()/rebuild().
  void set_edge(NodeId from, NodeId to, Cost cost);

  /// Stages an edge removal (no-op if absent).
  void remove_edge(NodeId from, NodeId to);

  /// Net effect of one repair pass on the tree.
  struct Delta {
    /// Nodes whose distance changed, ascending.
    std::vector<NodeId> dist_changed;
    /// (node, previous parent) for nodes whose tree parent changed,
    /// ascending by node.
    std::vector<std::pair<NodeId, NodeId>> parent_changed;
  };

  /// Repairs the tree for all staged changes and reports what moved.
  /// Cost is proportional to the affected region, not the graph.
  Delta update();

  /// From-scratch recompute of the canonical tree (checkpoint restore and
  /// the table audit). Discards any staged-but-not-updated bookkeeping
  /// (the adjacency itself always reflects every set_edge/remove_edge).
  void rebuild();

  const std::vector<Cost>& dist() const { return dist_; }
  const std::vector<NodeId>& parent() const { return parent_; }
  bool reachable(NodeId v) const { return dist_[v] < kInfCost; }

 private:
  // Directed adjacency as two flat sorted arrays — out_ keyed (from, to),
  // in_ keyed (to, from) — instead of per-node vectors: a router holds one
  // DynamicSpt per neighbor, so per-node container overhead at n ~ 1000
  // would dominate the footprint. Lookups are binary searches; edits are
  // O(E) memmoves, amortized small against the repair they trigger.
  struct Arc {
    NodeId key;    ///< primary endpoint (from for out_, to for in_)
    NodeId other;  ///< the opposite endpoint
    Cost cost;
  };

  std::pair<const Arc*, const Arc*> range(const std::vector<Arc>& arcs,
                                          NodeId key) const;
  Cost edge_cost(NodeId from, NodeId to) const;
  void put_arc(std::vector<Arc>& arcs, NodeId key, NodeId other, Cost cost);
  void drop_arc(std::vector<Arc>& arcs, NodeId key, NodeId other);
  NodeId canonical_parent(NodeId v) const;

  NodeId root_ = kInvalidNode;
  std::vector<Arc> out_;  // sorted by (from, to)
  std::vector<Arc> in_;   // sorted by (to, from)
  std::vector<Cost> dist_;
  std::vector<NodeId> parent_;
  /// Edge cost as of the last update()/rebuild(), keyed (from, to), for
  /// every edge touched since — kInfCost encodes "was absent".
  std::map<std::pair<NodeId, NodeId>, Cost> staged_;
  // update() scratch, kept across calls so a small repair costs O(region),
  // not O(n) in allocation and memset. Invariant between updates: every
  // recorded_/in_region_ byte is 0 and every cand_ entry is kInfCost
  // (update() sparsely restores exactly the entries it wrote).
  std::vector<std::uint8_t> recorded_;
  std::vector<std::uint8_t> in_region_;
  std::vector<Cost> cand_;
};

}  // namespace mdr::graph
