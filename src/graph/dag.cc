#include "graph/dag.h"

#include <cassert>
#include <queue>

namespace mdr::graph {

std::optional<std::vector<NodeId>> topological_order(
    const SuccessorSets& successor_sets) {
  const std::size_t n = successor_sets.size();
  std::vector<int> indegree(n, 0);
  for (const auto& succs : successor_sets) {
    for (NodeId k : succs) {
      assert(k >= 0 && static_cast<std::size_t>(k) < n);
      ++indegree[k];
    }
  }
  // Min-heap keyed by node id for a deterministic order.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (NodeId k : successor_sets[u]) {
      if (--indegree[k] == 0) ready.push(k);
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle
  return order;
}

bool is_acyclic(const SuccessorSets& successor_sets) {
  return topological_order(successor_sets).has_value();
}

std::vector<bool> can_reach(const SuccessorSets& successor_sets, NodeId dest) {
  const std::size_t n = successor_sets.size();
  assert(dest >= 0 && static_cast<std::size_t>(dest) < n);
  // Reverse-BFS from dest over successor edges.
  std::vector<std::vector<NodeId>> preds(n);
  for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
    for (NodeId k : successor_sets[i]) preds[k].push_back(i);
  }
  std::vector<bool> reach(n, false);
  std::queue<NodeId> frontier;
  reach[dest] = true;
  frontier.push(dest);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId p : preds[u]) {
      if (!reach[p]) {
        reach[p] = true;
        frontier.push(p);
      }
    }
  }
  return reach;
}

}  // namespace mdr::graph
