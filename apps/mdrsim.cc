// mdrsim — run a routing experiment from a scenario file.
//
// Usage:
//   mdrsim <scenario-file> [--mode mp|sp|opt] [--seed N] [--quiet]
//
// Prints per-flow delays, drop and control-plane counters, and, if the
// scenario enables them, the delay time series and LFI check summary.
// See src/sim/scenario.h for the file format, and examples/scenarios/ for
// ready-made inputs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/scenario.h"

namespace {

void usage() {
  std::fputs(
      "usage: mdrsim <scenario-file> [--mode mp|sp|opt] [--seed N] [--quiet]\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string mode_override;
  std::string seed_override;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode" && i + 1 < argc) {
      mode_override = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed_override = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::string error;
  auto scenario = mdr::sim::load_scenario(path, &error);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "mdrsim: %s\n", error.c_str());
    return 1;
  }
  if (!mode_override.empty()) {
    if (mode_override != "mp" && mode_override != "sp" &&
        mode_override != "opt") {
      std::fprintf(stderr, "mdrsim: bad --mode %s\n", mode_override.c_str());
      return 2;
    }
    scenario->mode = mode_override;
  }
  if (!seed_override.empty()) {
    scenario->config.seed =
        static_cast<std::uint64_t>(std::strtoull(seed_override.c_str(), nullptr, 10));
  }

  const auto result = mdr::sim::run_scenario(*scenario);

  std::printf("scenario: %s  mode=%s  seed=%llu\n", path.c_str(),
              scenario->mode.c_str(),
              static_cast<unsigned long long>(scenario->config.seed));
  std::printf("%-24s %10s %12s %12s\n", "flow", "delivered", "mean (ms)",
              "p95 (ms)");
  for (const auto& f : result.flows) {
    std::printf("%-24s %10llu %12.3f %12.3f\n",
                (f.src + "->" + f.dst).c_str(),
                static_cast<unsigned long long>(f.delivered),
                f.mean_delay_s * 1e3, f.p95_delay_s * 1e3);
  }
  std::printf("network average delay: %.3f ms over %llu packets\n",
              result.avg_delay_s * 1e3,
              static_cast<unsigned long long>(result.delivered));
  std::printf("drops: no-route %llu, ttl %llu, queue/link %llu\n",
              static_cast<unsigned long long>(result.dropped_no_route),
              static_cast<unsigned long long>(result.dropped_ttl),
              static_cast<unsigned long long>(result.dropped_queue));
  std::printf("control plane: %llu messages, %.1f kB\n",
              static_cast<unsigned long long>(result.control_messages),
              result.control_bits / 8e3);
  if (result.lfi_checks > 0) {
    std::printf("LFI checks: %llu, violations: %llu\n",
                static_cast<unsigned long long>(result.lfi_checks),
                static_cast<unsigned long long>(result.lfi_violations));
  }
  if (!quiet && !result.timeseries.empty()) {
    std::puts("\ntime series (window end, delivered, mean delay ms, drops):");
    for (const auto& p : result.timeseries) {
      std::printf("  %8.1f %8llu %10.3f %6llu\n", p.t,
                  static_cast<unsigned long long>(p.delivered),
                  p.mean_delay_s * 1e3,
                  static_cast<unsigned long long>(p.dropped));
    }
  }
  return 0;
}
