// mdrsim — run a routing experiment from a scenario file.
//
// Usage:
//   mdrsim <scenario-file> [--mode mp|sp|opt] [--seed N]
//          [--seeds N] [--jobs M] [--shards S] [--json PATH] [--quiet]
//          [--validate] [--sweep lo:hi:steps | --sweep auto]
//
// --validate parses the scenario (applying --mode/--seed/--shards
// overrides), prints a one-screen summary and exits without simulating —
// a dry-run for editors and CI. --sweep replaces the normal run with a
// load sweep (runner/load_sweep.h): flow rates are scaled across the given
// multiplier grid, the blow-up point is bisected, and one JSON object per
// probe plus a final summary object stream to stdout.
//
// By default runs the scenario once and prints per-flow delays, drop and
// control-plane counters, and, if the scenario enables them, the delay time
// series and LFI check summary. With --seeds N > 1 the experiment is
// replicated N times under seeds derived from the base seed and fanned
// across --jobs worker threads (results are identical for any --jobs
// value); per-flow delays are reported as mean / stddev / 95% CI across the
// replications. --json writes the batch (aggregates plus per-run rows) in
// the schema documented in docs/RUNNER.md.
//
// Crash safety (docs/CHECKPOINT.md): --checkpoint-interval S with
// --checkpoint-path P (or the scenario's `checkpoint` directive) snapshots
// the complete simulation state every S sim-seconds; --resume-from P picks
// an interrupted run back up with byte-identical final output. Single runs
// also catch SIGINT/SIGTERM, write a final checkpoint at the next safe
// boundary, flush partial telemetry and exit 128+signal. Batches (--seeds
// N > 1) are fault tolerant instead: a job that throws is retried
// (--retries) at the same seed, overruns are cancelled (--job-timeout), and
// --result-dir DIR skips jobs whose marker files exist so an interrupted
// batch re-run completes only the missing seeds.
//
// Telemetry (docs/OBSERVABILITY.md): --metrics-out streams the per-run
// time-series samples plus per-run and merged metric registries (JSONL, or
// tidy CSV when the path ends in .csv); --trace streams the structured
// protocol event trace and any flight-recorder dumps (JSONL);
// --sample-interval S sets the sampling period (also the scenario `sample`
// directive; --metrics-out alone defaults it to 1s). All off by default —
// a default run is bit-identical to one built without telemetry.
//
// Profiling (docs/OBSERVABILITY.md "Profiling & convergence tracing"):
// --prof-out F (or the scenario `prof` directive) enables the wall-clock
// profiler and the convergence span tracer; --prof-out additionally writes
// the combined Chrome trace-event JSON (Perfetto-loadable) to F and is
// single-run only. With prof enabled, a per-subsystem self/total table and
// convergence statistics print to stderr and a "prof" block lands in
// --json. --prof-deep (or `prof deep=1`) also times the per-event hot
// sections instead of just counting them — per-event attribution at a
// self-reported overhead of tens of percent on hosts with slow clocks.
// Default output stays byte-identical with prof off; an events-per-second
// host-rate line always prints to stderr (stderr is not part of the
// deterministic contract).
// See src/sim/scenario.h for the file format, and examples/scenarios/ for
// ready-made inputs.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ckpt/ckpt.h"
#include "obs/sampler.h"
#include "obs/spans.h"
#include "runner/experiment_runner.h"
#include "runner/load_sweep.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

namespace {

// SIGINT/SIGTERM request a graceful stop: the flag is polled at the
// simulation's safe boundaries (between event-queue slices / at sharded
// window barriers), where a final checkpoint is written if checkpointing is
// configured and partial telemetry is flushed before exiting 128+signal.
// Lock-free stores only — this runs in signal context.
std::atomic<bool> g_stop{false};
std::atomic<int> g_signal{0};

void on_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  g_stop.store(true, std::memory_order_relaxed);
}

void usage() {
  std::fputs(
      "usage: mdrsim <scenario-file> [--mode mp|sp|opt] [--seed N]\n"
      "              [--seeds N] [--jobs M] [--shards S] [--json PATH]\n"
      "              [--quiet]\n"
      "              [--metrics-out PATH] [--trace PATH]\n"
      "              [--prof-out PATH] [--prof-deep] [--sample-interval S]\n"
      "              [--checkpoint-interval S] [--checkpoint-path PATH]\n"
      "              [--resume-from PATH]\n"
      "              [--retries N] [--job-timeout S] [--result-dir DIR]\n"
      "              [--validate] [--sweep lo:hi:steps | --sweep auto]\n",
      stderr);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void print_single_run(const mdr::sim::SimResult& result, bool quiet) {
  std::printf("%-24s %10s %12s %12s\n", "flow", "delivered", "mean (ms)",
              "p95 (ms)");
  for (const auto& f : result.flows) {
    std::printf("%-24s %10llu %12.3f %12.3f\n",
                (f.src + "->" + f.dst).c_str(),
                static_cast<unsigned long long>(f.delivered),
                f.mean_delay_s * 1e3, f.p95_delay_s * 1e3);
  }
  std::printf("network average delay: %.3f ms over %llu packets\n",
              result.avg_delay_s * 1e3,
              static_cast<unsigned long long>(result.delivered));
  std::printf("drops: no-route %llu, ttl %llu, queue/link %llu, dead %llu\n",
              static_cast<unsigned long long>(result.dropped_no_route),
              static_cast<unsigned long long>(result.dropped_ttl),
              static_cast<unsigned long long>(result.dropped_queue),
              static_cast<unsigned long long>(result.dropped_dead));
  std::printf("control plane: %llu messages, %.1f kB",
              static_cast<unsigned long long>(result.control_messages),
              result.control_bits / 8e3);
  if (result.control_garbage > 0) {
    std::printf(", %llu corrupted rejected",
                static_cast<unsigned long long>(result.control_garbage));
  }
  std::printf("\n");
  if (!result.node_control.empty()) {
    std::printf(
        "LSUs: %llu originated, %llu retransmitted, %llu paced away, "
        "%llu acks",
        static_cast<unsigned long long>(result.lsus_originated),
        static_cast<unsigned long long>(result.lsus_retransmitted),
        static_cast<unsigned long long>(result.lsus_suppressed),
        static_cast<unsigned long long>(result.acks_sent));
    if (result.damped_withdrawals > 0) {
      std::printf(", %llu damped withdrawals",
                  static_cast<unsigned long long>(result.damped_withdrawals));
    }
    if (result.control_dropped > 0) {
      std::printf(
          "; control drops %llu (queue %llu, wire %llu, flush %llu, "
          "down %llu)",
          static_cast<unsigned long long>(result.control_dropped),
          static_cast<unsigned long long>(result.control_dropped_queue),
          static_cast<unsigned long long>(result.control_dropped_wire),
          static_cast<unsigned long long>(result.control_dropped_flush),
          static_cast<unsigned long long>(result.control_dropped_down));
    }
    std::printf("\n");
  }
  if (result.lfi_checks > 0) {
    std::printf("LFI checks: %llu, violations: %llu\n",
                static_cast<unsigned long long>(result.lfi_checks),
                static_cast<unsigned long long>(result.lfi_violations));
  }
  if (result.stability.has_value()) {
    const auto& st = *result.stability;
    std::printf(
        "stability: verdict %s  margin %.3f  peak slope %.0f bps "
        "(threshold %.0f)\n",
        st.unstable ? "UNSTABLE" : "stable", st.margin,
        st.max_queue_slope_bps, st.slope_threshold_bps);
    if (st.unstable) {
      std::printf("  blow-up declared at t=%.2f\n", st.t_unstable);
    }
  }
  if (result.monitor.has_value()) {
    const auto& m = *result.monitor;
    std::printf(
        "monitor: %llu checks, %llu forwarding loops, %llu blackholes, "
        "%llu accounting leaks\n",
        static_cast<unsigned long long>(m.checks),
        static_cast<unsigned long long>(m.forwarding_loops),
        static_cast<unsigned long long>(m.blackholes),
        static_cast<unsigned long long>(m.accounting_leaks));
    if (m.control_drop_alerts > 0 || m.starved_adjacencies > 0) {
      std::printf("  watchdog: %llu control-drop alerts, %llu starved adjacencies\n",
                  static_cast<unsigned long long>(m.control_drop_alerts),
                  static_cast<unsigned long long>(m.starved_adjacencies));
    }
    if (m.t_last_anomaly >= 0) {
      std::printf("  last anomaly (loop/blackhole) at t=%.2f\n",
                  m.t_last_anomaly);
    }
    for (const auto& inc : m.incidents) {
      if (inc.t_reconverged >= 0) {
        std::printf(
            "  incident %-10s crash t=%.2f  recovered t=%.2f  reconverged "
            "t=%.2f (%.2fs, %llu packets lost)\n",
            inc.name.c_str(), inc.t_crash, inc.t_recovered, inc.t_reconverged,
            inc.time_to_reconverge(),
            static_cast<unsigned long long>(inc.packets_lost));
      } else {
        std::printf("  incident %-10s crash t=%.2f  NOT RECONVERGED\n",
                    inc.name.c_str(), inc.t_crash);
      }
    }
  }
  if (!quiet && !result.timeseries.empty()) {
    std::puts("\ntime series (window end, delivered, mean delay ms, drops):");
    for (const auto& p : result.timeseries) {
      std::printf("  %8.1f %8llu %10.3f %6llu\n", p.t,
                  static_cast<unsigned long long>(p.delivered),
                  p.mean_delay_s * 1e3,
                  static_cast<unsigned long long>(p.dropped));
    }
  }
}

void print_batch(const mdr::runner::BatchResult& batch) {
  std::printf("%-24s %14s %12s %12s\n", "flow", "mean (ms)", "stddev (ms)",
              "95% CI (±ms)");
  for (const auto& f : batch.flows) {
    std::printf("%-24s %14.3f %12.3f %12.3f\n", (f.src + "->" + f.dst).c_str(),
                f.mean_delay_s * 1e3, f.stddev_delay_s * 1e3,
                f.ci95_delay_s * 1e3);
  }
  std::printf(
      "network average delay: %.3f ms (stddev %.3f, 95%% CI ±%.3f) over %zu "
      "replications\n",
      batch.avg_delay_s.mean() * 1e3, batch.avg_delay_s.stddev() * 1e3,
      mdr::ci95_halfwidth(batch.avg_delay_s) * 1e3, batch.runs.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string mode_override;
  std::string seed_override;
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  std::string prof_out_path;
  bool prof_deep = false;
  double sample_interval = -1;  // < 0: keep the scenario's setting
  double checkpoint_interval = -1;  // < 0: keep the scenario's setting
  std::string checkpoint_path;
  std::string resume_path;
  long retries = 1;
  double job_timeout = 0;
  std::string result_dir;
  long seeds = 1;
  long jobs = 1;
  long shards = -1;  // < 0: keep the scenario's engine setting
  bool quiet = false;
  bool validate = false;
  std::string sweep_arg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode" && i + 1 < argc) {
      mode_override = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed_override = argv[++i];
    } else if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = std::strtol(argv[++i], nullptr, 10);
      if (shards < 1) {
        std::fputs("mdrsim: --shards must be at least 1\n", stderr);
        return 2;
      }
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--prof-out" && i + 1 < argc) {
      prof_out_path = argv[++i];
    } else if (arg == "--prof-deep") {
      prof_deep = true;
    } else if (arg == "--sample-interval" && i + 1 < argc) {
      sample_interval = std::strtod(argv[++i], nullptr);
      if (sample_interval <= 0) {
        std::fputs("mdrsim: --sample-interval must be positive\n", stderr);
        return 2;
      }
    } else if (arg == "--checkpoint-interval" && i + 1 < argc) {
      checkpoint_interval = std::strtod(argv[++i], nullptr);
      if (checkpoint_interval <= 0) {
        std::fputs("mdrsim: --checkpoint-interval must be positive\n", stderr);
        return 2;
      }
    } else if (arg == "--checkpoint-path" && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (arg == "--resume-from" && i + 1 < argc) {
      resume_path = argv[++i];
    } else if (arg == "--retries" && i + 1 < argc) {
      retries = std::strtol(argv[++i], nullptr, 10);
      if (retries < 1) {
        std::fputs("mdrsim: --retries must be at least 1\n", stderr);
        return 2;
      }
    } else if (arg == "--job-timeout" && i + 1 < argc) {
      job_timeout = std::strtod(argv[++i], nullptr);
      if (job_timeout <= 0) {
        std::fputs("mdrsim: --job-timeout must be positive\n", stderr);
        return 2;
      }
    } else if (arg == "--result-dir" && i + 1 < argc) {
      result_dir = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--sweep" && i + 1 < argc) {
      sweep_arg = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (path.empty() || seeds < 1 || jobs < 1) {
    usage();
    return 2;
  }

  std::string error;
  auto scenario = mdr::sim::load_scenario(path, &error);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "mdrsim: %s\n", error.c_str());
    return 1;
  }
  if (!mode_override.empty()) {
    if (mode_override != "mp" && mode_override != "sp" &&
        mode_override != "opt") {
      std::fprintf(stderr, "mdrsim: bad --mode %s\n", mode_override.c_str());
      return 2;
    }
    scenario->mode = mode_override;
  }
  if (!seed_override.empty()) {
    scenario->spec.config.seed = static_cast<std::uint64_t>(
        std::strtoull(seed_override.c_str(), nullptr, 10));
  }
  auto& config = scenario->spec.config;
  if (sample_interval > 0) config.sample_interval = sample_interval;
  if (!metrics_path.empty() && config.sample_interval <= 0) {
    config.sample_interval = 1.0;  // sensible default when asked for metrics
  }
  if (!trace_path.empty()) config.trace = true;
  if (prof_deep) {
    config.prof = true;
    config.prof_deep = true;
  }
  if (!prof_out_path.empty()) {
    config.prof = true;
    if (seeds > 1 || !sweep_arg.empty()) {
      std::fputs(
          "mdrsim: --prof-out writes one trace for one simulation; use "
          "--seeds 1 and no --sweep (batches still merge a prof block into "
          "--json via the scenario `prof` directive)\n",
          stderr);
      return 2;
    }
  }
  if (checkpoint_interval > 0) config.checkpoint_interval = checkpoint_interval;
  if (!checkpoint_path.empty()) config.checkpoint_path = checkpoint_path;
  if (!resume_path.empty()) config.resume_from = resume_path;
  if (config.checkpoint_interval > 0 && config.checkpoint_path.empty()) {
    std::fputs(
        "mdrsim: checkpointing needs a snapshot path (--checkpoint-path or "
        "the scenario's `checkpoint path=`)\n",
        stderr);
    return 2;
  }
  if ((config.checkpoint_interval > 0 || !config.resume_from.empty()) &&
      (seeds > 1 || !sweep_arg.empty())) {
    std::fputs(
        "mdrsim: checkpoint/resume snapshots a single simulation; use "
        "--seeds 1 and no --sweep (batch-level resume is --result-dir)\n",
        stderr);
    return 2;
  }
  if (shards >= 1) scenario->spec.engine.shards = static_cast<int>(shards);
  if (scenario->spec.engine.shards >= 1 &&
      (config.trace || config.flightrec_capacity > 0)) {
    std::fputs(
        "mdrsim: --trace / flightrec need the single-threaded engine; drop "
        "them or the shards setting\n",
        stderr);
    return 2;
  }
  // The sharded engine spawns `shards` threads per simulation; sharing the
  // thread budget with the replication fan-out would oversubscribe the
  // host, so the runner's job count shrinks to compensate.
  if (scenario->spec.engine.shards >= 1 && jobs > 1) {
    const long effective = std::max(1L, jobs / scenario->spec.engine.shards);
    if (effective != jobs) {
      std::fprintf(stderr,
                   "mdrsim: note: %ld shards per run, shrinking --jobs %ld "
                   "-> %ld to keep ~%ld threads\n",
                   static_cast<long>(scenario->spec.engine.shards), jobs,
                   effective, jobs);
      jobs = effective;
    }
  }

  if (validate) {
    const auto& spec = scenario->spec;
    std::printf("%s: OK\n", path.c_str());
    std::printf("  topology: %zu nodes, %zu links\n", spec.topo.num_nodes(),
                spec.topo.num_links());
    std::printf("  flows: %zu  mode=%s  seed=%llu  duration=%.1fs\n",
                spec.flows.size(), scenario->mode.c_str(),
                static_cast<unsigned long long>(config.seed),
                config.duration);
    const char* model =
        config.traffic.model == mdr::sim::TrafficModel::kPoisson ? "poisson"
        : config.traffic.model == mdr::sim::TrafficModel::kOnOff ? "bursty"
        : config.traffic.model == mdr::sim::TrafficModel::kParetoOnOff
            ? "pareto"
            : "adversarial";
    std::printf("  traffic: %s", model);
    if (config.traffic.diurnal_period_s > 0) {
      std::printf(", diurnal period=%.1fs amp=%.2f",
                  config.traffic.diurnal_period_s,
                  config.traffic.diurnal_amplitude);
    }
    if (!config.traffic.flash_crowds.empty()) {
      std::printf(", %zu flash crowd(s)", config.traffic.flash_crowds.size());
    }
    std::printf("\n");
    const auto& faults = config.faults;
    std::printf(
        "  faults: %zu toggles, %zu crashes, %zu recoveries, %zu flaps, "
        "%zu gilbert, %zu dutycycles\n",
        config.link_toggles.size(), faults.crashes.size(),
        faults.recoveries.size(), faults.flaps.size(), faults.gilbert.size(),
        faults.duty_cycles.size());
    std::printf("  hello: %s  monitor: %s  stability: %s",
                config.use_hello ? "on" : "off",
                config.monitor_interval > 0 ? "on" : "off",
                config.stability.interval > 0 ? "on" : "off");
    if (scenario->spec.engine.shards >= 1) {
      std::printf("  engine: %d shards", scenario->spec.engine.shards);
    }
    std::printf("\n");
    return 0;
  }

  if (!sweep_arg.empty()) {
    mdr::runner::SweepOptions options;
    if (sweep_arg != "auto") {
      double lo = 0, hi = 0;
      long steps = 0;
      char colon1 = 0, colon2 = 0;
      std::istringstream in(sweep_arg);
      in >> lo >> colon1 >> hi >> colon2 >> steps;
      if (!in || colon1 != ':' || colon2 != ':' || lo <= 0 || hi < lo ||
          steps < 1) {
        std::fputs("mdrsim: --sweep wants lo:hi:steps (lo > 0, hi >= lo, "
                   "steps >= 1) or 'auto'\n",
                   stderr);
        return 2;
      }
      options.lo = lo;
      options.hi = hi;
      options.steps = static_cast<int>(steps);
    }
    const auto sweep = mdr::runner::run_load_sweep(scenario->spec,
                                                   scenario->mode, options,
                                                   &std::cout);
    std::printf(
        "{\"kind\":\"sweep_summary\",\"mode\":\"%s\",\"stable_high\":%.17g,"
        "\"unstable_low\":%.17g,\"critical\":%.17g,\"monotone\":%s,"
        "\"probes\":%zu}\n",
        scenario->mode.c_str(), sweep.stable_high, sweep.unstable_low,
        sweep.critical, sweep.monotone ? "true" : "false",
        sweep.points.size());
    return sweep.monotone ? 0 : 1;
  }

  mdr::runner::BatchResult batch;
  const auto exec_start = std::chrono::steady_clock::now();
  if (seeds == 1) {
    // Single runs execute inline (same derived seed and aggregation as a
    // batch of one, so the output is unchanged) with SIGINT/SIGTERM wired
    // to the simulation's cooperative stop flag: on a signal the sim writes
    // a final checkpoint (when configured), hands back partial telemetry,
    // and mdrsim exits 128+signal.
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    batch.mode = scenario->mode;
    batch.base_seed = scenario->spec.config.seed;
    batch.jobs = static_cast<int>(jobs);
    mdr::sim::ExperimentSpec spec = scenario->spec;
    spec.config.seed = mdr::runner::derive_seed(batch.base_seed, 0);
    spec.config.interrupt = &g_stop;
    try {
      batch.runs.push_back(mdr::sim::run_experiment(spec, scenario->mode));
    } catch (const mdr::sim::SimInterrupted& interrupted) {
      const int sig = g_signal.load(std::memory_order_relaxed);
      std::fprintf(stderr, "mdrsim: interrupted by signal %d at a safe boundary%s\n",
                   sig,
                   spec.config.checkpoint_path.empty()
                       ? ""
                       : ("; checkpoint written to " +
                          spec.config.checkpoint_path)
                             .c_str());
      // Flush whatever telemetry the partial run accumulated so an
      // interrupted experiment still leaves analyzable output behind.
      if (interrupted.telemetry.has_value() && !metrics_path.empty()) {
        const auto names = mdr::sim::telemetry_names(scenario->spec.topo,
                                                     scenario->spec.flows);
        std::ofstream out(metrics_path);
        if (out) {
          if (ends_with(metrics_path, ".csv")) {
            mdr::obs::write_samples_csv(out, *interrupted.telemetry, names,
                                        /*run=*/0, /*header=*/true);
          } else {
            mdr::obs::write_samples_jsonl(out, *interrupted.telemetry, names,
                                          /*run=*/0);
            mdr::obs::write_metrics_jsonl(out, interrupted.telemetry->metrics,
                                          "0");
          }
        }
      }
      if (interrupted.telemetry.has_value() && !trace_path.empty()) {
        const auto names = mdr::sim::telemetry_names(scenario->spec.topo,
                                                     scenario->spec.flows);
        std::ofstream out(trace_path);
        if (out) {
          mdr::obs::write_trace_jsonl(out, *interrupted.telemetry, names,
                                      /*run=*/0);
        }
      }
      return 128 + (sig > 0 ? sig : SIGINT);
    } catch (const mdr::ckpt::Error& e) {
      // A missing, corrupt or mismatched snapshot is an I/O error, not a
      // crash: name the problem and exit 1 like any other unreadable input.
      std::fprintf(stderr, "mdrsim: checkpoint error: %s\n", e.what());
      return 1;
    }
    mdr::runner::JobOutcome outcome{"ok", 1, ""};
    outcome.wall_clock_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - exec_start)
                               .count();
    outcome.peak_rss_bytes = mdr::runner::peak_rss_bytes();
    batch.outcomes.push_back(std::move(outcome));
    batch.flows = mdr::runner::aggregate_flows(batch.runs);
    batch.avg_delay_s.add(batch.runs.front().avg_delay_s);
    if (batch.runs.front().telemetry.has_value()) {
      batch.metrics.merge(batch.runs.front().telemetry->metrics);
    }
    batch.prof = batch.runs.front().prof;
    batch.convergence = batch.runs.front().convergence;
  } else {
    mdr::runner::Options options;
    options.jobs = static_cast<int>(jobs);
    options.base_seed = scenario->spec.config.seed;
    options.max_attempts = static_cast<int>(retries);
    options.job_timeout_s = job_timeout;
    options.result_dir = result_dir;
    mdr::runner::ExperimentRunner runner(options);
    batch = runner.run_replicated(scenario->spec, scenario->mode,
                                  static_cast<int>(seeds));
  }

  std::printf("scenario: %s  mode=%s  base_seed=%llu  seeds=%ld  jobs=%ld\n",
              path.c_str(), scenario->mode.c_str(),
              static_cast<unsigned long long>(scenario->spec.config.seed),
              seeds, jobs);
  if (batch.runs.size() == 1) {
    print_single_run(batch.runs.front(), quiet);
  } else {
    print_batch(batch);
  }

  // Host-side throughput, on every engine. stderr only: stdout stays
  // byte-identical run to run while host timings never are.
  {
    const double exec_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - exec_start)
                              .count();
    unsigned long long total_events = 0;
    for (const auto& r : batch.runs) total_events += r.events_processed;
    std::fprintf(stderr,
                 "mdrsim: %llu events in %.3f s host, %.3g events/s\n",
                 total_events, exec_s,
                 exec_s > 0 ? static_cast<double>(total_events) / exec_s : 0.0);
  }
  if (batch.prof.has_value()) {
    std::fputs(batch.prof->summary_table().c_str(), stderr);
  }
  if (batch.convergence.has_value()) {
    const auto& conv = *batch.convergence;
    std::fprintf(stderr,
                 "[prof] convergence: %zu spans (records %llu, dropped "
                 "%llu), time-to-converge mean %.4fs p95 %.4fs max %.4fs; "
                 "amplification mean %.1f routers / %.1f recomputes, max "
                 "%.0f routers\n",
                 conv.spans.size(),
                 static_cast<unsigned long long>(conv.records),
                 static_cast<unsigned long long>(conv.dropped),
                 conv.mean_convergence_s, conv.p95_convergence_s,
                 conv.max_convergence_s, conv.mean_routers_touched,
                 conv.mean_recomputes, conv.max_routers_touched);
  }

  // Per-job failures never abort the batch; they surface here (and in the
  // JSON rows) and flip the exit code so CI notices.
  bool any_failed = false;
  for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
    const auto& oc = batch.outcomes[i];
    if (oc.status == "failed") {
      any_failed = true;
      std::fprintf(stderr, "mdrsim: job %zu failed after %d attempt(s): %s\n",
                   i, oc.attempts, oc.error.c_str());
    } else if (oc.status == "cached") {
      std::fprintf(stderr, "mdrsim: job %zu skipped (result marker in %s)\n",
                   i, result_dir.c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "mdrsim: cannot write %s\n", json_path.c_str());
      return 1;
    }
    mdr::runner::write_results_json(out, batch, path);
  }

  if (!prof_out_path.empty()) {
    if (!batch.prof.has_value()) {
      // A failed single run leaves no report; surface that instead of
      // writing an empty trace.
      std::fprintf(stderr, "mdrsim: no profile collected, skipping %s\n",
                   prof_out_path.c_str());
    } else {
      std::ofstream out(prof_out_path);
      if (!out) {
        std::fprintf(stderr, "mdrsim: cannot write %s\n",
                     prof_out_path.c_str());
        return 1;
      }
      mdr::obs::write_trace_json(out, *batch.prof,
                                 batch.convergence.has_value()
                                     ? *batch.convergence
                                     : mdr::obs::ConvergenceReport{});
      std::fprintf(stderr, "mdrsim: trace-event JSON written to %s\n",
                   prof_out_path.c_str());
    }
  }

  if (!metrics_path.empty() || !trace_path.empty()) {
    const auto names =
        mdr::sim::telemetry_names(scenario->spec.topo, scenario->spec.flows);
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (!out) {
        std::fprintf(stderr, "mdrsim: cannot write %s\n",
                     metrics_path.c_str());
        return 1;
      }
      const bool csv = ends_with(metrics_path, ".csv");
      for (std::size_t i = 0; i < batch.runs.size(); ++i) {
        if (!batch.runs[i].telemetry.has_value()) continue;
        const auto& telemetry = *batch.runs[i].telemetry;
        const int run = static_cast<int>(i);
        if (csv) {
          mdr::obs::write_samples_csv(out, telemetry, names, run,
                                      /*header=*/i == 0);
        } else {
          mdr::obs::write_samples_jsonl(out, telemetry, names, run);
          mdr::obs::write_metrics_jsonl(out, telemetry.metrics,
                                        std::to_string(run));
        }
      }
      if (!csv) mdr::obs::write_metrics_jsonl(out, batch.metrics, "merged");
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "mdrsim: cannot write %s\n", trace_path.c_str());
        return 1;
      }
      for (std::size_t i = 0; i < batch.runs.size(); ++i) {
        if (!batch.runs[i].telemetry.has_value()) continue;
        mdr::obs::write_trace_jsonl(out, *batch.runs[i].telemetry, names,
                                    static_cast<int>(i));
      }
    }
  }
  return any_failed ? 1 : 0;
}
